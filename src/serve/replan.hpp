#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/bill_capper.hpp"

namespace billcap::serve {

/// Circuit-breaker state over the mid-hour re-optimization path.
enum class BreakerState {
  kClosed,    ///< re-plans flow normally
  kOpen,      ///< re-plans held; last good plan serves; cooling down
  kHalfOpen,  ///< cooldown elapsed; exactly one probe re-plan is allowed
};
const char* to_string(BreakerState state) noexcept;

/// Breaker knobs. Cooldowns are measured in serve ticks, not wall time, so
/// breaker trajectories are bitwise-reproducible across kill/resume.
struct BreakerConfig {
  /// Trip after this many *consecutive* degraded re-plans (MILP fell off
  /// the optimal rung: node budget exhausted, infeasible, deadline).
  std::size_t trip_after = 3;
  /// First open period, in ticks.
  std::size_t cooldown_ticks = 4;
  /// A failed half-open probe re-opens for cooldown * multiplier (capped).
  double cooldown_multiplier = 2.0;
  std::size_t cooldown_max_ticks = 64;
};

/// The re-plan circuit breaker: consecutive degraded re-optimizations open
/// it, an exponential cooldown gates half-open probes, and one clean probe
/// closes it again. Protects the serve loop from re-plan storms (feed
/// bursts, pathological MILP hours) the same way the supervisor's backoff
/// protects the host from crash loops.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config);

  BreakerState state() const noexcept { return state_; }
  /// True when a requested re-plan may actually run this tick.
  bool allows_replan() const noexcept { return state_ != BreakerState::kOpen; }
  /// Times the breaker has transitioned Closed/HalfOpen -> Open.
  std::size_t trips() const noexcept { return trips_; }

  /// Advances the cooldown clock one tick; an expired cooldown moves
  /// Open -> HalfOpen. Returns true when the state changed.
  bool on_tick() noexcept;

  /// Feeds one executed re-plan's outcome into the machine. Returns true
  /// when the state changed (trip, re-trip, or a probe closing it).
  bool on_replan(bool degraded) noexcept;

  /// Checkpoint support.
  struct State {
    BreakerState state = BreakerState::kClosed;
    std::size_t consecutive_degraded = 0;
    std::size_t cooldown_remaining = 0;
    std::size_t current_cooldown_ticks = 0;
    std::size_t trips = 0;
  };
  State snapshot() const noexcept;
  void restore(const State& state) noexcept;

 private:
  void open() noexcept;

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_degraded_ = 0;
  std::size_t cooldown_remaining_ = 0;
  std::size_t current_cooldown_ticks_ = 0;
  std::size_t trips_ = 0;
};

/// The plan the serve loop is currently executing: the per-site dispatch
/// and the hourly service rates the last accepted re-plan produced.
/// `plan_tick` anchors staleness (ticks since adoption).
struct ActivePlan {
  bool valid = false;
  bool degraded = false;  ///< produced by the degradation ladder, not optimal
  std::vector<double> lambda;   ///< requests/hour per site
  double premium_rate = 0.0;    ///< requests/hour served with QoS
  double ordinary_rate = 0.0;   ///< best-effort requests/hour
  double predicted_cost = 0.0;  ///< optimizer's own belief, $/h
  std::size_t plan_tick = 0;    ///< tick the plan was adopted
};

/// The serve-mode re-plan engine: wraps BillCapper::decide behind a
/// deterministic per-tick deadline budget (a branch-and-bound node cap —
/// wall-clock deadlines would make breaker trajectories irreproducible)
/// and the circuit breaker. An optional wall-clock assist can be layered
/// on for production, at the documented cost of bitwise resume.
class ReplanEngine {
 public:
  /// `sites`/`policies` must outlive the engine (the Simulator owns them).
  /// `node_budget` <= 0 keeps the configured MILP node limit.
  ReplanEngine(const std::vector<datacenter::DataCenter>& sites,
               const std::vector<market::PricingPolicy>& policies,
               core::OptimizerOptions options, long node_budget,
               double deadline_ms, BreakerConfig breaker);

  CircuitBreaker& breaker() noexcept { return breaker_; }
  const CircuitBreaker& breaker() const noexcept { return breaker_; }

  std::size_t replans() const noexcept { return replans_; }
  std::size_t degraded_replans() const noexcept { return degraded_replans_; }
  void restore_counters(std::size_t replans,
                        std::size_t degraded_replans) noexcept {
    replans_ = replans;
    degraded_replans_ = degraded_replans;
  }

  struct Request {
    double premium_rate = 0.0;   ///< requests/hour wanted with QoS
    double ordinary_rate = 0.0;  ///< best-effort requests/hour wanted
    std::span<const double> demand_mw;  ///< believed background demand
    double hourly_budget = 0.0;
    std::span<const std::uint8_t> site_available;  ///< empty = all up
    std::size_t tick = 0;
  };

  /// Runs one re-plan if the breaker allows it, feeding the outcome back
  /// into the breaker and (on success or degraded-but-usable results)
  /// replacing `plan`. Returns true when a re-plan actually executed.
  bool replan(const Request& request, ActivePlan& plan);

 private:
  core::BillCapper capper_;
  double deadline_ms_;
  CircuitBreaker breaker_;
  std::size_t replans_ = 0;
  std::size_t degraded_replans_ = 0;
};

}  // namespace billcap::serve
