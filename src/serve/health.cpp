#include "serve/health.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace billcap::serve {

const char* to_string(ServeHealth health) noexcept {
  switch (health) {
    case ServeHealth::kOk: return "OK";
    case ServeHealth::kDegraded: return "DEGRADED";
    case ServeHealth::kShedding: return "SHEDDING";
    case ServeHealth::kBreakerOpen: return "BREAKER_OPEN";
    case ServeHealth::kStandby: return "STANDBY";
  }
  return "unknown";
}

ServeHealth classify_health(AdmissionLevel admission, BreakerState breaker,
                            bool plan_unreliable) noexcept {
  ServeHealth health = ServeHealth::kOk;
  if (plan_unreliable) health = std::max(health, ServeHealth::kDegraded);
  if (admission == AdmissionLevel::kShedOrdinary)
    health = std::max(health, ServeHealth::kShedding);
  if (breaker != BreakerState::kClosed)
    health = std::max(health, ServeHealth::kBreakerOpen);
  if (admission == AdmissionLevel::kPremiumOnly)
    health = std::max(health, ServeHealth::kStandby);
  return health;
}

HealthTracker::HealthTracker(ServeHealth initial) : current_(initial) {}

bool HealthTracker::observe(ServeHealth next, std::size_t tick) {
  if (next == current_) return false;
  if (history_.size() >= kMaxHistory)
    history_.erase(history_.begin());  // evict oldest; the count remains
  history_.push_back({tick, current_, next});
  ++total_;
  current_ = next;
  return true;
}

std::string HealthTracker::encode_history() const {
  std::string out;
  for (const auto& t : history_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(t.tick);
    out += ':';
    out += std::to_string(static_cast<int>(t.from));
    out += ':';
    out += std::to_string(static_cast<int>(t.to));
  }
  return out;
}

namespace {

ServeHealth health_from_int(long value) {
  if (value < 0 || value > static_cast<long>(ServeHealth::kStandby))
    throw std::runtime_error("HealthTracker: health value out of range");
  return static_cast<ServeHealth>(value);
}

}  // namespace

HealthTracker HealthTracker::decode(ServeHealth current, std::size_t total,
                                    const std::string& encoded) {
  HealthTracker tracker(current);
  tracker.total_ = total;
  std::istringstream stream(encoded);
  std::string token;
  // Tokens are the fixed-size history tail, never more than kMaxHistory —
  // the encoder only ever emits a bounded window.
  while (stream >> token) {
    HealthTransition t;
    long from = 0;
    long to = 0;
    if (std::sscanf(token.c_str(), "%zu:%ld:%ld", &t.tick, &from, &to) != 3)
      throw std::runtime_error("HealthTracker: malformed history token '" +
                               token + "'");
    t.from = health_from_int(from);
    t.to = health_from_int(to);
    if (tracker.history_.size() >= kMaxHistory)
      throw std::runtime_error("HealthTracker: history exceeds bound");
    tracker.history_.push_back(t);
  }
  return tracker;
}

}  // namespace billcap::serve
