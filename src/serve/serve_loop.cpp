#include "serve/serve_loop.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/checkpoint_keys.hpp"
#include "core/cost_model.hpp"
#include "core/fallback_allocator.hpp"
#include "core/formulation.hpp"
#include "core/market_feed.hpp"
#include "lp/problem.hpp"
#include "market/closed_loop.hpp"
#include "util/journal.hpp"

namespace billcap::serve {

namespace keys = core::keys;

namespace {

// ---- digest ---------------------------------------------------------------

/// FNV-1a continuation mixer (same scheme as core/checkpoint.cpp's): the
/// serve digest starts from the batch config digest and folds in every
/// serve knob that changes decisions, so a serve checkpoint can be resumed
/// only under the exact configuration that wrote it.
struct Digest {
  std::uint64_t hash;

  explicit Digest(std::uint64_t seed) noexcept : hash(seed) {}

  void mix_u64(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_size(std::size_t value) noexcept {
    mix_u64(static_cast<std::uint64_t>(value));
  }
  void mix_double(double value) noexcept {
    mix_u64(std::bit_cast<std::uint64_t>(value));
  }
};

// ---- durable state --------------------------------------------------------

/// Every mutable word of the serve loop: restoring this struct and
/// replaying from `next_tick` reproduces the uninterrupted run bitwise.
struct ServeState {
  std::size_t next_tick = 0;
  double spent = 0.0;

  // Current hour's planning context (persisted so a mid-hour resume does
  // not re-poll the market feed).
  std::size_t hour = 0;
  double hour_budget = 0.0;
  bool hour_stale = false;
  std::size_t observed_hour = 0;
  core::MarketFeed::State feed;

  double premium_depth = 0.0;
  double ordinary_depth = 0.0;
  double dropped_premium = 0.0;
  double dropped_ordinary = 0.0;
  std::size_t feed_pending = 0;
  std::size_t feed_seen = 0;
  std::size_t feed_dropped = 0;

  CircuitBreaker::State breaker;
  AdmissionLevel admission = AdmissionLevel::kAdmitAll;
  ActivePlan plan;

  // Closed-loop coupling: the plan lambda captured at the last hour
  // boundary, from which the hour's coupled planning curves were derived.
  // Persisted so a mid-hour resume re-derives the identical curves even
  // after later re-plans replaced the plan itself.
  bool coupled_anchor_valid = false;
  std::vector<double> coupled_anchor;
  std::size_t coupled_refreshes = 0;

  ServeHealth health = ServeHealth::kOk;
  std::string health_history;
  std::size_t health_transitions = 0;

  std::size_t kills_fired = 0;

  double total_premium_arrivals = 0.0;
  double total_ordinary_arrivals = 0.0;
  double total_served_premium = 0.0;
  double total_served_ordinary = 0.0;
  double max_premium_depth = 0.0;
  double max_ordinary_depth = 0.0;
  std::size_t replans = 0;
  std::size_t degraded_replans = 0;
  std::size_t shed_ticks = 0;
  std::size_t standby_ticks = 0;
  std::size_t degraded_ticks = 0;
};

void save_state(const std::string& path, std::size_t keep_generations,
                std::uint64_t digest, const ServeState& st) {
  util::Journal j(keys::kServeCheckpointMagic, keys::kServeCheckpointVersion);
  j.set_u64(keys::kConfigDigest, digest);
  j.set_size(keys::kServeNextTick, st.next_tick);
  j.set_double_bits(keys::kSpent, st.spent);

  j.set_size(keys::kServeHour, st.hour);
  j.set_double_bits(keys::kServeHourBudget, st.hour_budget);
  j.set_size(keys::kServeHourStale, st.hour_stale ? 1 : 0);
  j.set_size(keys::kServeObservedHour, st.observed_hour);
  for (std::size_t i = 0; i < st.feed.rng.size(); ++i)
    j.set_u64(keys::feed_rng(i), st.feed.rng[i]);
  j.set_size(keys::kFeedRecoveredUntil, st.feed.recovered_until);

  j.set_double_bits(keys::kServePremiumDepth, st.premium_depth);
  j.set_double_bits(keys::kServeOrdinaryDepth, st.ordinary_depth);
  j.set_double_bits(keys::kServeDroppedPremium, st.dropped_premium);
  j.set_double_bits(keys::kServeDroppedOrdinary, st.dropped_ordinary);
  j.set_size(keys::kServeFeedPending, st.feed_pending);
  j.set_size(keys::kServeFeedSeen, st.feed_seen);
  j.set_size(keys::kServeFeedDropped, st.feed_dropped);

  j.set_size(keys::kServeBreakerState,
             static_cast<std::size_t>(st.breaker.state));
  j.set_size(keys::kServeBreakerDegraded, st.breaker.consecutive_degraded);
  j.set_size(keys::kServeBreakerCooldown, st.breaker.cooldown_remaining);
  j.set_size(keys::kServeBreakerWindow, st.breaker.current_cooldown_ticks);
  j.set_size(keys::kServeBreakerTrips, st.breaker.trips);
  j.set_size(keys::kServeAdmissionLevel,
             static_cast<std::size_t>(st.admission));

  j.set_size(keys::kServePlanValid, st.plan.valid ? 1 : 0);
  j.set_size(keys::kServePlanDegraded, st.plan.degraded ? 1 : 0);
  j.set_double_list(keys::kServePlanLambda, st.plan.lambda);
  j.set_double_bits(keys::kServePlanPremiumRate, st.plan.premium_rate);
  j.set_double_bits(keys::kServePlanOrdinaryRate, st.plan.ordinary_rate);
  j.set_double_bits(keys::kServePlanPredictedCost, st.plan.predicted_cost);
  j.set_size(keys::kServePlanTick, st.plan.plan_tick);

  j.set_size(keys::kServeCoupledAnchorValid, st.coupled_anchor_valid ? 1 : 0);
  j.set_double_list(keys::kServeCoupledAnchorLambda, st.coupled_anchor);
  j.set_size(keys::kServeCoupledRefreshes, st.coupled_refreshes);

  j.set_size(keys::kServeHealth, static_cast<std::size_t>(st.health));
  j.set(keys::kServeHealthHistory, st.health_history);
  j.set_size(keys::kServeHealthTransitions, st.health_transitions);
  j.set_size(keys::kServeKillsFired, st.kills_fired);

  j.set_double_bits(keys::kTotalPremiumArrivals, st.total_premium_arrivals);
  j.set_double_bits(keys::kTotalOrdinaryArrivals, st.total_ordinary_arrivals);
  j.set_double_bits(keys::kTotalServedPremium, st.total_served_premium);
  j.set_double_bits(keys::kTotalServedOrdinary, st.total_served_ordinary);
  j.set_double_bits(keys::kServeMaxPremiumDepth, st.max_premium_depth);
  j.set_double_bits(keys::kServeMaxOrdinaryDepth, st.max_ordinary_depth);
  j.set_size(keys::kServeReplans, st.replans);
  j.set_size(keys::kServeDegradedReplans, st.degraded_replans);
  j.set_size(keys::kServeShedTicks, st.shed_ticks);
  j.set_size(keys::kServeStandbyTicks, st.standby_ticks);
  j.set_size(keys::kServeDegradedTicks, st.degraded_ticks);

  util::Journal::rotate_generations(path, keep_generations);
  j.save_atomic(path);
}

BreakerState breaker_state_from(std::size_t value) {
  if (value > static_cast<std::size_t>(BreakerState::kHalfOpen))
    throw std::runtime_error("serve checkpoint: breaker state out of range");
  return static_cast<BreakerState>(value);
}

AdmissionLevel admission_level_from(std::size_t value) {
  if (value > static_cast<std::size_t>(AdmissionLevel::kPremiumOnly))
    throw std::runtime_error("serve checkpoint: admission level out of range");
  return static_cast<AdmissionLevel>(value);
}

ServeHealth health_from(std::size_t value) {
  if (value > static_cast<std::size_t>(ServeHealth::kStandby))
    throw std::runtime_error("serve checkpoint: health word out of range");
  return static_cast<ServeHealth>(value);
}

ServeState decode_state(const util::Journal& j) {
  ServeState st;
  st.next_tick = j.get_size(keys::kServeNextTick);
  st.spent = j.get_double_bits(keys::kSpent);

  st.hour = j.get_size(keys::kServeHour);
  st.hour_budget = j.get_double_bits(keys::kServeHourBudget);
  st.hour_stale = j.get_size(keys::kServeHourStale) != 0;
  st.observed_hour = j.get_size(keys::kServeObservedHour);
  for (std::size_t i = 0; i < st.feed.rng.size(); ++i)
    st.feed.rng[i] = j.get_u64(keys::feed_rng(i));
  st.feed.recovered_until = j.get_size(keys::kFeedRecoveredUntil);

  st.premium_depth = j.get_double_bits(keys::kServePremiumDepth);
  st.ordinary_depth = j.get_double_bits(keys::kServeOrdinaryDepth);
  st.dropped_premium = j.get_double_bits(keys::kServeDroppedPremium);
  st.dropped_ordinary = j.get_double_bits(keys::kServeDroppedOrdinary);
  st.feed_pending = j.get_size(keys::kServeFeedPending);
  st.feed_seen = j.get_size(keys::kServeFeedSeen);
  st.feed_dropped = j.get_size(keys::kServeFeedDropped);

  st.breaker.state = breaker_state_from(j.get_size(keys::kServeBreakerState));
  st.breaker.consecutive_degraded = j.get_size(keys::kServeBreakerDegraded);
  st.breaker.cooldown_remaining = j.get_size(keys::kServeBreakerCooldown);
  st.breaker.current_cooldown_ticks = j.get_size(keys::kServeBreakerWindow);
  st.breaker.trips = j.get_size(keys::kServeBreakerTrips);
  st.admission = admission_level_from(j.get_size(keys::kServeAdmissionLevel));

  st.plan.valid = j.get_size(keys::kServePlanValid) != 0;
  st.plan.degraded = j.get_size(keys::kServePlanDegraded) != 0;
  st.plan.lambda = j.get_double_list(keys::kServePlanLambda);
  st.plan.premium_rate = j.get_double_bits(keys::kServePlanPremiumRate);
  st.plan.ordinary_rate = j.get_double_bits(keys::kServePlanOrdinaryRate);
  st.plan.predicted_cost = j.get_double_bits(keys::kServePlanPredictedCost);
  st.plan.plan_tick = j.get_size(keys::kServePlanTick);

  // Absent on pre-coupler serve checkpoints: loads as open-loop state.
  if (j.has(keys::kServeCoupledAnchorValid)) {
    st.coupled_anchor_valid = j.get_size(keys::kServeCoupledAnchorValid) != 0;
    st.coupled_anchor = j.get_double_list(keys::kServeCoupledAnchorLambda);
    st.coupled_refreshes = j.get_size(keys::kServeCoupledRefreshes);
  }

  st.health = health_from(j.get_size(keys::kServeHealth));
  st.health_history = j.get(keys::kServeHealthHistory);
  st.health_transitions = j.get_size(keys::kServeHealthTransitions);
  st.kills_fired = j.get_size(keys::kServeKillsFired);

  st.total_premium_arrivals = j.get_double_bits(keys::kTotalPremiumArrivals);
  st.total_ordinary_arrivals = j.get_double_bits(keys::kTotalOrdinaryArrivals);
  st.total_served_premium = j.get_double_bits(keys::kTotalServedPremium);
  st.total_served_ordinary = j.get_double_bits(keys::kTotalServedOrdinary);
  st.max_premium_depth = j.get_double_bits(keys::kServeMaxPremiumDepth);
  st.max_ordinary_depth = j.get_double_bits(keys::kServeMaxOrdinaryDepth);
  st.replans = j.get_size(keys::kServeReplans);
  st.degraded_replans = j.get_size(keys::kServeDegradedReplans);
  st.shed_ticks = j.get_size(keys::kServeShedTicks);
  st.standby_ticks = j.get_size(keys::kServeStandbyTicks);
  st.degraded_ticks = j.get_size(keys::kServeDegradedTicks);
  return st;
}

struct ServeLoadReport {
  ServeState state;
  std::size_t generation = 0;
  std::vector<std::string> skipped;
};

/// Newest-first generation scan, exactly like core::load_checkpoint_fallback
/// but against the serve journal format.
ServeLoadReport load_state_fallback(const std::string& path, std::size_t gens,
                                    std::uint64_t expected_digest) {
  ServeLoadReport report;
  for (std::size_t g = 0; g < gens; ++g) {
    const std::string gen_path = util::Journal::generation_path(path, g);
    if (!core::checkpoint_exists(gen_path)) {
      report.skipped.push_back(gen_path + ": missing");
      continue;
    }
    try {
      const util::Journal j = util::Journal::load(
          gen_path, keys::kServeCheckpointMagic, keys::kServeCheckpointVersion);
      if (j.get_u64(keys::kConfigDigest) != expected_digest) {
        report.skipped.push_back(gen_path +
                                 ": config digest mismatch (serve checkpoint "
                                 "from a different configuration)");
        continue;
      }
      report.state = decode_state(j);
      report.generation = g;
      return report;
    } catch (const std::exception& e) {
      report.skipped.push_back(gen_path + ": " + e.what());
    }
  }
  std::string detail;
  for (const std::string& s : report.skipped) detail += "\n  " + s;
  throw std::runtime_error(
      "serve checkpoint: no viable generation among the newest " +
      std::to_string(gens) + detail);
}

}  // namespace

// ---- ServeReport ----------------------------------------------------------

bool ServeReport::premium_qos_ok() const noexcept {
  // No premium mass turned away at the door, and no stranded premium
  // backlog at the end (a sliver below 5 % of the queue — one tick's
  // natural residue — is in-flight work, not a violation).
  return dropped_premium == 0.0 &&
         (premium_queue_capacity <= 0.0 ||
          final_premium_depth <= 0.05 * premium_queue_capacity);
}

double ServeReport::premium_throughput_ratio() const noexcept {
  if (total_premium_arrivals <= 0.0) return 1.0;
  return total_served_premium / total_premium_arrivals;
}

double ServeReport::ordinary_throughput_ratio() const noexcept {
  if (total_ordinary_arrivals <= 0.0) return 1.0;
  return total_served_ordinary / total_ordinary_arrivals;
}

// ---- ServeLoop ------------------------------------------------------------

ServeLoop::ServeLoop(const core::Simulator& sim, ServeConfig config)
    : sim_(sim), config_(config) {
  if (config_.ticks_per_hour == 0)
    throw std::invalid_argument("ServeLoop: ticks_per_hour must be >= 1");
  if (config_.premium_queue_ticks <= 0.0 || config_.ordinary_queue_ticks <= 0.0)
    throw std::invalid_argument("ServeLoop: queue sizes must be > 0 ticks");
  if (config_.feed_updates_per_tick == 0)
    throw std::invalid_argument(
        "ServeLoop: feed_updates_per_tick must be >= 1");

  const std::size_t hours = sim_.evaluation_trace().hours();
  horizon_hours_ = config_.horizon_hours == 0
                       ? hours
                       : std::min(config_.horizon_hours, hours);
  total_ticks_ = horizon_hours_ * config_.ticks_per_hour;

  const RequestFeed feed(sim_.evaluation_trace(), sim_.fault_injector(),
                         sim_.config().premium_share, config_.ticks_per_hour);
  const workload::PremiumSplit split(sim_.config().premium_share);
  const double mean = feed.mean_tick_arrivals();
  // A degenerate class share (all-premium / all-ordinary configs) still
  // gets a token one-request queue so fill() stays well-defined.
  premium_cap_ =
      std::max(config_.premium_queue_ticks * split.premium(mean), 1.0);
  ordinary_cap_ =
      std::max(config_.ordinary_queue_ticks * split.ordinary(mean), 1.0);

  Digest d(core::checkpoint_digest(sim_.config(),
                                   core::Strategy::kCostCapping));
  d.mix_size(config_.ticks_per_hour);
  d.mix_size(horizon_hours_);
  d.mix_double(config_.premium_queue_ticks);
  d.mix_double(config_.ordinary_queue_ticks);
  d.mix_size(config_.feed_queue_capacity);
  d.mix_size(config_.feed_updates_per_tick);
  d.mix_double(config_.admission.shed_enter_fill);
  d.mix_double(config_.admission.shed_exit_fill);
  d.mix_double(config_.admission.standby_enter_fill);
  d.mix_double(config_.admission.standby_exit_fill);
  d.mix_size(config_.admission.stale_ticks_tolerated);
  d.mix_size(config_.breaker.trip_after);
  d.mix_size(config_.breaker.cooldown_ticks);
  d.mix_double(config_.breaker.cooldown_multiplier);
  d.mix_size(config_.breaker.cooldown_max_ticks);
  d.mix_u64(static_cast<std::uint64_t>(config_.replan_node_budget));
  d.mix_double(config_.replan_deadline_ms);
  d.mix_size(config_.kill_at_ticks.size());
  for (std::size_t k : config_.kill_at_ticks) d.mix_size(k);
  // `standby` is deliberately NOT mixed: a standby attempt must be able to
  // pick up the primary's checkpoint and vice versa.
  digest_ = d.hash;
}

ServeOutcome ServeLoop::run(
    const std::string& checkpoint_path, bool resume,
    const std::function<void(const TickRecord&)>& on_tick) const {
  return run(checkpoint_path, resume, on_tick, Controls{});
}

ServeOutcome ServeLoop::run(
    const std::string& checkpoint_path, bool resume,
    const std::function<void(const TickRecord&)>& on_tick,
    const Controls& controls) const {
  const bool durable = !checkpoint_path.empty();
  if (!durable && resume)
    throw std::invalid_argument("ServeLoop: resume requires a checkpoint path");
  if (!durable && !config_.kill_at_ticks.empty())
    throw std::invalid_argument(
        "ServeLoop: injected kills require a checkpoint path (an in-memory "
        "run could never recover)");
  const std::size_t gens = std::max<std::size_t>(1, controls.keep_generations);

  std::vector<std::size_t> kills = config_.kill_at_ticks;
  std::sort(kills.begin(), kills.end());

  const std::size_t T = config_.ticks_per_hour;
  const core::SimulationConfig& sim_cfg = sim_.config();
  const auto& sites = sim_.sites();
  const auto& policies = sim_.policies();
  const core::FaultInjector& injector = sim_.fault_injector();
  const std::size_t n = sites.size();
  const std::size_t eval_hours = sim_.evaluation_trace().hours();

  // Closed-loop coupling: planning (re-plans and the water-filling ladder)
  // runs against curves re-derived from the grid at every hour boundary,
  // anchored at the plan the daemon was executing when the hour opened.
  // Ground-truth billing below deliberately stays on the static settlement
  // curves — the daemon prices its decisions against the coupled market but
  // is billed on the tariff it actually signed.
  const bool coupled = sim_cfg.market_coupler.enabled;
  std::vector<market::PricingPolicy> active_policies = policies;
  std::optional<market::CoupledMarket> coupled_market;
  std::vector<double> coupled_caps;
  if (coupled) {
    coupled_market.emplace(market::CoupledMarket::paper());
    if (coupled_market->num_sites() != n)
      throw std::invalid_argument(
          "ServeLoop: closed-loop coupling requires one site per coupled "
          "market bus");
    coupled_caps.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      coupled_caps[i] = sites[i].power_mw(sites[i].max_requests_per_hour());
  }

  const RequestFeed arrivals_feed(sim_.evaluation_trace(), injector,
                                  sim_cfg.premium_share, T);

  ServeOutcome out;
  ServeState st;
  core::MarketFeed feed(&injector, sim_cfg.market_feed,
                        sim_cfg.seed ^ 0x6d6172666565ULL);

  bool resumed = false;
  if (resume && durable &&
      core::any_checkpoint_generation_exists(checkpoint_path, gens)) {
    ServeLoadReport loaded = load_state_fallback(checkpoint_path, gens,
                                                 digest_);
    st = std::move(loaded.state);
    out.resumed_from_tick = st.next_tick;
    out.resumed_generation = loaded.generation;
    out.resume_skipped = std::move(loaded.skipped);
    resumed = true;
  }
  if (resumed) {
    feed.restore(st.feed);
  } else {
    // Record the seeded stream before the first commit so a kill at tick 0
    // resumes the identical RNG trajectory.
    st.feed = feed.state();
  }

  BoundedQueue premium_q(premium_cap_);
  BoundedQueue ordinary_q(ordinary_cap_);
  premium_q.restore(st.premium_depth, st.dropped_premium);
  ordinary_q.restore(st.ordinary_depth, st.dropped_ordinary);
  FeedUpdateQueue updates(config_.feed_queue_capacity);
  updates.restore(st.feed_pending, st.feed_seen, st.feed_dropped);
  AdmissionController admission(config_.admission, config_.standby);
  admission.restore(st.admission);
  ReplanEngine engine(sites, active_policies, sim_cfg.optimizer,
                      config_.replan_node_budget, config_.replan_deadline_ms,
                      config_.breaker);
  engine.breaker().restore(st.breaker);
  engine.restore_counters(st.replans, st.degraded_replans);
  HealthTracker tracker = HealthTracker::decode(st.health,
                                                st.health_transitions,
                                                st.health_history);

  std::size_t ticks_this_attempt = 0;
  std::vector<double> believed(n);
  std::vector<double> truth(n);
  std::vector<std::uint8_t> available(n);

  // Re-derives the hour's coupled planning curves from the persisted
  // anchor. Replacing active_policies' CONTENTS re-points the engine's
  // capper (it holds a reference to the vector, not a copy). A derivation
  // the grid cannot support (infeasible sweep under the hour's faults)
  // falls back to the static curves until the next boundary — and a resume
  // hits the same infeasibility, so the fallback is deterministic too.
  const auto refresh_coupled = [&](std::size_t for_hour) {
    std::vector<double> anchor_power(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double l =
          i < st.coupled_anchor.size() ? st.coupled_anchor[i] : 0.0;
      if (l > 0.0) anchor_power[i] = sites[i].power_mw(l);
    }
    const market::CoupledHourFaults faults = sim_.grid_faults_at(for_hour);
    try {
      active_policies = coupled_market->derive_local_policies(
          anchor_power, believed, believed, coupled_caps,
          sim_cfg.market_coupler.loop, &faults);
      ++st.coupled_refreshes;
    } catch (const std::exception&) {
      active_policies = policies;
    }
  };

  // A mid-hour resume must plan against the same curves the dead attempt
  // did: rebuild the hour's believed demand from the persisted hour
  // context and re-derive from the persisted anchor (not a new refresh —
  // the counter stays what the checkpoint said).
  if (coupled && resumed && st.coupled_anchor_valid) {
    const std::size_t demand_hour = st.hour_stale ? st.observed_hour : st.hour;
    for (std::size_t i = 0; i < n; ++i)
      believed[i] = sim_.background_demand()[i].at(demand_hour) *
                    injector.demand_multiplier(i, demand_hour);
    const std::size_t refreshes = st.coupled_refreshes;
    refresh_coupled(st.hour);
    st.coupled_refreshes = refreshes;
  }

  while (st.next_tick < total_ticks_) {
    if (controls.stop_flag && *controls.stop_flag) {
      out.stopped = true;
      break;
    }
    if (controls.max_ticks > 0 && ticks_this_attempt >= controls.max_ticks) {
      out.stopped = true;
      break;
    }

    const std::size_t tick = st.next_tick;

    // Snap the kill cursor past ticks already committed (a standby attempt
    // or a generation-fallback resume must not re-fire history).
    while (st.kills_fired < kills.size() && kills[st.kills_fired] < tick)
      ++st.kills_fired;

    // Injected daemon death: dies before this tick's checkpoint commits —
    // zero forward progress, only the consumed kill entry is recorded (the
    // kill-storm soak needs each restart to re-earn the tick). Standby
    // attempts bypass the kills: they model defects in the primary path.
    if (!config_.standby && st.kills_fired < kills.size() &&
        kills[st.kills_fired] == tick) {
      ++st.kills_fired;
      save_state(checkpoint_path, gens, digest_, st);
      out.crashed = true;
      out.crash_tick = tick;
      break;
    }

    const std::size_t hour = tick / T;
    bool replan_wanted = false;

    // ---- hour boundary: fresh budget, market-feed poll ------------------
    if (tick % T == 0) {
      st.hour = hour;
      st.hour_budget = sim_cfg.enforce_budget
                           ? sim_.budgeter().hourly_budget(hour, st.spent)
                           : 1e18;
      const core::FeedObservation obs = feed.poll(hour);
      st.hour_stale = obs.stale;
      st.observed_hour = std::min(obs.observed_hour, eval_hours - 1);
      replan_wanted = true;
    }

    // ---- bounded ingest: mid-hour price revisions + arrivals ------------
    updates.push(injector.feed_burst_updates(hour));
    const std::size_t processed = updates.drain(config_.feed_updates_per_tick);
    if (processed > 0) replan_wanted = true;

    const RequestFeed::TickArrivals arr = arrivals_feed.at(tick);
    const double premium_accepted = premium_q.offer(arr.premium);
    const double ordinary_accepted = ordinary_q.offer(arr.ordinary);

    // Pressure and staleness also want a re-plan.
    const std::size_t tolerated = config_.admission.stale_ticks_tolerated;
    if (!st.plan.valid || tick - st.plan.plan_tick > tolerated)
      replan_wanted = true;
    if (ordinary_q.fill() >= config_.admission.shed_enter_fill ||
        premium_q.fill() >= config_.admission.standby_enter_fill)
      replan_wanted = true;

    // ---- world as the daemon believes it --------------------------------
    const std::size_t demand_hour = st.hour_stale ? st.observed_hour : hour;
    for (std::size_t i = 0; i < n; ++i) {
      believed[i] = sim_.background_demand()[i].at(demand_hour) *
                    injector.demand_multiplier(i, demand_hour);
      truth[i] = sim_.background_demand()[i].at(hour) *
                 injector.demand_multiplier(i, hour);
      available[i] = injector.site_available(i, hour) ? 1 : 0;
    }

    // ---- closed-loop coupling: hour-boundary curve refresh --------------
    // Anchored at the plan the daemon carries into the hour; re-plans later
    // in the hour re-decide against these curves but do not re-derive them
    // (one grid sweep per hour, matching the batch coupler's cadence).
    if (coupled && tick % T == 0) {
      st.coupled_anchor =
          st.plan.valid ? st.plan.lambda : std::vector<double>(n, 0.0);
      st.coupled_anchor_valid = true;
      refresh_coupled(hour);
    }

    // ---- breaker clock + re-plan engine ---------------------------------
    engine.breaker().on_tick();
    bool replanned = false;
    bool plan_held = false;
    if (!config_.standby && replan_wanted) {
      ReplanEngine::Request req;
      req.premium_rate =
          arr.premium * static_cast<double>(T) + premium_q.depth();
      req.ordinary_rate =
          arr.ordinary * static_cast<double>(T) + ordinary_q.depth();
      req.demand_mw = believed;
      req.hourly_budget = st.hour_budget;
      req.site_available = available;
      req.tick = tick;
      replanned = engine.replan(req, st.plan);
      plan_held = !replanned;
    }

    // ---- admission ladder -----------------------------------------------
    AdmissionInputs inputs;
    inputs.premium_fill = premium_q.fill();
    inputs.ordinary_fill = ordinary_q.fill();
    inputs.plan_stale_ticks =
        st.plan.valid ? tick - st.plan.plan_tick : tolerated + 1;
    inputs.breaker_open = engine.breaker().state() != BreakerState::kClosed;
    const AdmissionLevel level = admission.update(inputs);

    // ---- service: plan rates or the water-filling ladder ----------------
    const double premium_wanted = premium_q.depth();
    const double ordinary_wanted = ordinary_q.depth();
    double premium_rate = 0.0;   // requests/hour this tick serves at
    double ordinary_rate = 0.0;
    std::span<const double> lambda;
    std::vector<double> ladder_lambda;  // keeps fallback dispatch alive
    if (level == AdmissionLevel::kAdmitAll && st.plan.valid) {
      premium_rate = st.plan.premium_rate;
      ordinary_rate = st.plan.ordinary_rate;
      lambda = st.plan.lambda;
    } else {
      // Shedding (or no plan yet): greedy water-filling over the believed
      // cost curves — the same rung the batch capper bottoms out on. The
      // standby rung serves premium only, budget be damned (the QoS
      // guarantee outranks the cap, Section V-B).
      std::vector<core::SiteModel> models;
      models.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        core::SiteModel m = core::make_site_model(
            sites[i], active_policies[i], believed[i],
            sim_cfg.optimizer.model_cooling_network);
        if (!available[i]) m.lambda_max = 0.0;
        models.push_back(std::move(m));
      }
      core::FallbackRequest request;
      request.lambda_required = premium_wanted * static_cast<double>(T);
      if (level == AdmissionLevel::kPremiumOnly) {
        request.lambda_optional = 0.0;
        request.cost_budget = lp::kInfinity;
      } else {
        request.lambda_optional = ordinary_wanted * static_cast<double>(T);
        request.cost_budget = st.hour_budget;
      }
      const core::AllocationResult ladder =
          core::fallback_allocate(models, request);
      premium_rate = std::min(request.lambda_required, ladder.total_lambda);
      ordinary_rate = ladder.total_lambda - premium_rate;
      ladder_lambda = ladder.lambda_vector();
      lambda = ladder_lambda;
    }

    const double served_premium =
        premium_q.take(premium_rate / static_cast<double>(T));
    const double served_ordinary =
        ordinary_q.take(ordinary_rate / static_cast<double>(T));

    // ---- ground-truth billing -------------------------------------------
    // The allocation is an hourly-rate shape; this tick actually ran it for
    // served/T of an hour's worth. Scale the dispatch to the served mass so
    // an emptier-than-planned queue is not billed for phantom load.
    double planned_total = 0.0;
    for (double v : lambda) planned_total += v;
    const double served_total = (served_premium + served_ordinary) *
                                static_cast<double>(T);
    const double scale =
        planned_total > 0.0 ? std::min(served_total / planned_total, 1.0)
                            : 0.0;
    std::vector<double> dispatch(lambda.size(), 0.0);
    for (std::size_t i = 0; i < lambda.size(); ++i)
      dispatch[i] = lambda[i] * scale;
    const double tick_cost =
        dispatch.empty()
            ? 0.0
            : core::evaluate_allocation(sites, policies, truth, dispatch)
                      .total_cost /
                  static_cast<double>(T);
    st.spent += tick_cost;

    // ---- health word ----------------------------------------------------
    const bool plan_unreliable =
        !st.plan.valid || st.plan.degraded ||
        tick - st.plan.plan_tick > tolerated;
    const ServeHealth health =
        classify_health(level, engine.breaker().state(), plan_unreliable);
    tracker.observe(health, tick);

    // ---- aggregates + commit --------------------------------------------
    st.total_premium_arrivals += arr.premium;
    st.total_ordinary_arrivals += arr.ordinary;
    st.total_served_premium += served_premium;
    st.total_served_ordinary += served_ordinary;
    st.max_premium_depth = std::max(st.max_premium_depth, premium_q.depth());
    st.max_ordinary_depth = std::max(st.max_ordinary_depth, ordinary_q.depth());
    if (level == AdmissionLevel::kShedOrdinary) ++st.shed_ticks;
    if (level == AdmissionLevel::kPremiumOnly) ++st.standby_ticks;
    if (health != ServeHealth::kOk) ++st.degraded_ticks;

    st.premium_depth = premium_q.depth();
    st.ordinary_depth = ordinary_q.depth();
    st.dropped_premium = premium_q.dropped();
    st.dropped_ordinary = ordinary_q.dropped();
    st.feed_pending = updates.pending();
    st.feed_seen = updates.seen();
    st.feed_dropped = updates.dropped();
    st.breaker = engine.breaker().snapshot();
    st.admission = level;
    st.replans = engine.replans();
    st.degraded_replans = engine.degraded_replans();
    st.health = tracker.current();
    st.health_history = tracker.encode_history();
    st.health_transitions = tracker.transitions_total();
    st.feed = feed.state();
    st.next_tick = tick + 1;

    TickRecord rec;
    rec.tick = tick;
    rec.hour = hour;
    rec.premium_arrivals = arr.premium;
    rec.ordinary_arrivals = arr.ordinary;
    rec.dropped_premium = arr.premium - premium_accepted;
    rec.dropped_ordinary = arr.ordinary - ordinary_accepted;
    rec.served_premium = served_premium;
    rec.served_ordinary = served_ordinary;
    rec.premium_depth = premium_q.depth();
    rec.ordinary_depth = ordinary_q.depth();
    rec.cost = tick_cost;
    rec.hour_budget = st.hour_budget;
    rec.crowd_multiplier = arr.crowd_multiplier;
    rec.feed_updates = processed;
    rec.replanned = replanned;
    rec.replan_degraded = replanned && st.plan.degraded;
    rec.plan_held = plan_held;
    rec.stale = st.hour_stale;
    rec.admission = level;
    rec.breaker = engine.breaker().state();
    rec.health = health;
    out.report.ticks_this_attempt.push_back(rec);
    // The observer (the CLI's streamed CSV row) runs BEFORE the tick's
    // checkpoint commits: a death between the two leaves an extra row for
    // an uncommitted tick, which the resume's truncate-to-checkpoint pass
    // rewrites identically. The opposite order would lose the row of a
    // committed tick forever — the checkpoint deliberately stores no
    // per-tick records to back-fill it from.
    if (on_tick) on_tick(rec);
    if (durable) save_state(checkpoint_path, gens, digest_, st);
    ++ticks_this_attempt;
  }

  ServeReport& rep = out.report;
  rep.ticks_committed = st.next_tick;
  rep.ticks_per_hour = T;
  rep.total_premium_arrivals = st.total_premium_arrivals;
  rep.total_ordinary_arrivals = st.total_ordinary_arrivals;
  rep.total_served_premium = st.total_served_premium;
  rep.total_served_ordinary = st.total_served_ordinary;
  rep.dropped_premium = st.dropped_premium;
  rep.dropped_ordinary = st.dropped_ordinary;
  rep.total_cost = st.spent;
  rep.max_premium_depth = st.max_premium_depth;
  rep.max_ordinary_depth = st.max_ordinary_depth;
  rep.final_premium_depth = st.premium_depth;
  rep.final_ordinary_depth = st.ordinary_depth;
  rep.premium_queue_capacity = premium_cap_;
  rep.ordinary_queue_capacity = ordinary_cap_;
  rep.feed_updates_seen = st.feed_seen;
  rep.feed_updates_dropped = st.feed_dropped;
  rep.replans = st.replans;
  rep.degraded_replans = st.degraded_replans;
  rep.coupled_refreshes = st.coupled_refreshes;
  rep.breaker_trips = st.breaker.trips;
  rep.shed_ticks = st.shed_ticks;
  rep.standby_ticks = st.standby_ticks;
  rep.degraded_ticks = st.degraded_ticks;
  rep.final_health = tracker.current();
  rep.health_history = tracker.history();
  rep.health_transitions = tracker.transitions_total();
  return out;
}

}  // namespace billcap::serve
