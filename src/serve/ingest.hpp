#pragma once

#include <cstddef>

#include "core/fault_injector.hpp"
#include "workload/trace.hpp"

namespace billcap::serve {

/// A bounded accumulator of request mass (requests, not request objects —
/// arrival rates here are ~1e11/h, so queues account load as doubles). The
/// capacity is a hard ceiling: offer() accepts what fits and counts the
/// rest as dropped, so the ingest plane can never grow without bound no
/// matter how violent the flash crowd. Backpressure is the drop counter —
/// the admission ladder reads fill() and sheds before drops ever reach the
/// premium class.
class BoundedQueue {
 public:
  /// `capacity` must be > 0 (a zero-capacity queue would silently drop
  /// everything, which is a configuration bug, not a policy).
  explicit BoundedQueue(double capacity);

  double capacity() const noexcept { return capacity_; }
  double depth() const noexcept { return depth_; }
  /// depth / capacity in [0, 1]; the admission ladder's pressure signal.
  double fill() const noexcept { return depth_ / capacity_; }

  /// Offers `amount` of request mass; returns how much was accepted. The
  /// remainder is added to the drop counter (never negative input).
  double offer(double amount) noexcept;

  /// Takes up to `amount` from the queue; returns how much came out.
  double take(double amount) noexcept;

  /// Total mass dropped at the door since construction / restore.
  double dropped() const noexcept { return dropped_; }

  /// Checkpoint support: overwrite the mutable state.
  void restore(double depth, double dropped) noexcept;

 private:
  double capacity_ = 0.0;
  double depth_ = 0.0;
  double dropped_ = 0.0;
};

/// Batches the synthetic wiki trace into sub-hour ticks: hour `h`'s
/// arrivals are spread uniformly over the hour's ticks and scaled by the
/// fault injector's flash-crowd multiplier. Deterministic in (trace,
/// plan): the same tick always offers the same mass.
class RequestFeed {
 public:
  /// References must outlive the feed (the Simulator owns both).
  RequestFeed(const workload::Trace& trace,
              const core::FaultInjector& injector, double premium_share,
              std::size_t ticks_per_hour);

  struct TickArrivals {
    double premium = 0.0;
    double ordinary = 0.0;
    double crowd_multiplier = 1.0;  ///< active flash-crowd scaling
  };

  /// Arrivals offered during tick `tick` (global tick index).
  TickArrivals at(std::size_t tick) const;

  std::size_t ticks_per_hour() const noexcept { return ticks_per_hour_; }

  /// Crowd-free mean arrivals per tick over the trace — the yardstick the
  /// serve loop sizes its queues against.
  double mean_tick_arrivals() const noexcept;

 private:
  const workload::Trace& trace_;
  const core::FaultInjector& injector_;
  workload::PremiumSplit split_;
  std::size_t ticks_per_hour_;
};

/// A bounded queue of pending mid-hour price revisions. Revisions are
/// homogeneous "re-observe the market now" signals, so the queue stores a
/// coalesced count rather than payloads; overflow beyond the capacity is
/// dropped (and counted) instead of buffered — a feed burst can saturate
/// the replan pipeline, never the process heap.
class FeedUpdateQueue {
 public:
  explicit FeedUpdateQueue(std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t pending() const noexcept { return pending_; }

  /// Enqueues `count` revisions; overflow is counted dropped.
  void push(std::size_t count) noexcept;

  /// Dequeues up to `max_count` revisions; returns how many came out.
  std::size_t drain(std::size_t max_count) noexcept;

  /// Revisions ever offered (accepted + dropped).
  std::size_t seen() const noexcept { return seen_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Checkpoint support: overwrite the mutable state.
  void restore(std::size_t pending, std::size_t seen,
               std::size_t dropped) noexcept;

 private:
  std::size_t capacity_ = 0;
  std::size_t pending_ = 0;
  std::size_t seen_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace billcap::serve
