#pragma once

#include <string>
#include <string_view>

#include "lp/problem.hpp"

namespace billcap::lp {

/// Serializes a Problem in the classic CPLEX-LP text format:
///   Minimize
///    obj: 2 x + 3 y
///   Subject To
///    c1: x + y >= 10
///   Bounds
///    0 <= x <= 4
///   Generals / Binaries
///    n z
///   End
/// Useful for debugging models and for cross-checking against external
/// solvers. Variable names are sanitized (LP format forbids leading digits
/// and some punctuation).
std::string write_lp_format(const Problem& problem);

/// Writes write_lp_format() output to a file; throws on I/O failure.
void save_lp_format(const Problem& problem, const std::string& path);

/// Parses a (subset of the) CPLEX-LP format produced by write_lp_format:
/// objective sense + linear objective, "Subject To" rows with <=, >=, =,
/// a Bounds section, Generals/Binaries sections and End. Round-trips
/// everything this repository generates. Throws std::runtime_error with a
/// line number on malformed input.
Problem parse_lp_format(std::string_view text);

}  // namespace billcap::lp
