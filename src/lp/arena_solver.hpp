#pragma once

#include <cstddef>
#include <memory>

#include "lp/milp.hpp"
#include "lp/problem.hpp"

namespace billcap::lp {

/// Arena sizing and warm-start policy for ArenaSolver. Everything that
/// changes per *call* (node limits, deadlines, tolerances) stays in
/// MilpOptions; this struct only holds what is fixed for the solver's
/// lifetime.
struct ArenaConfig {
  /// Reuse the previous solve's final basis as the starting point of the
  /// next solve when the two problems share the same row structure (the
  /// hourly bill-capping MILPs differ only in objective costs and rhs).
  ///
  /// OFF by default: a resumed month starts with an empty arena, so a
  /// kill/resume run would diverge (at the ulp level) from an
  /// uninterrupted one. Like --replan-deadline-ms, enabling this trades
  /// bitwise kill/resume reproducibility for speed; results within one
  /// process remain fully deterministic.
  bool warm_across_solves = false;

  /// Run the lp presolve pass (singleton rows, fixed variables) before the
  /// branch-and-bound. Off by default for exact parity with the legacy
  /// engine; the differential suite exercises both settings.
  bool use_presolve = false;

  /// Hard cap on the arena footprint in bytes (tableau + node pool).
  /// 0 = unlimited: the arena is re-reserved between solves as shapes
  /// require and never grows inside the simplex loop. When the cap is set,
  /// a solve whose shape or node pool would not fit returns a Solution
  /// with SolveStatus::kArenaExhausted instead of allocating.
  std::size_t max_arena_bytes = 0;
};

/// Counters describing how solves were served. Monotonic over the solver's
/// lifetime; read them before/after a block to attribute a window.
struct ArenaStats {
  long cold_solves = 0;       ///< root solved by two-phase from scratch
  long warm_solves = 0;       ///< root served from the previous solve's basis
  long warm_fallbacks = 0;    ///< warm attempts that fell back to cold
  long node_warm_solves = 0;  ///< B&B children re-solved by dual simplex
  long node_cold_solves = 0;  ///< B&B children that needed a cold rebuild
  long primal_iterations = 0; ///< primal simplex pivots (phases 1+2)
  long dual_iterations = 0;   ///< dual simplex pivots (warm re-solves)
  long nodes_explored = 0;    ///< branch-and-bound nodes across all solves
};

/// Arena-backed MILP/LP solver: one flat preallocated tableau plus basis
/// index arrays and a pooled branch-and-bound node stack, sized once per
/// shape so the solve loops never allocate.
///
/// Branch-and-bound children re-solve from the parent's basis with a dual
/// simplex (bound branching only moves the rhs, so the resident tableau
/// stays dual-feasible); each child costs a handful of pivots instead of a
/// full two-phase solve. With `warm_across_solves` the final basis also
/// carries over to the next solve() on the same row structure: new
/// objective costs are reloaded and polished primal, then the new rhs is
/// swapped in through B^-1 and repaired dual. Every warm path falls back
/// to the cold two-phase solve when basis repair fails, so results match
/// the legacy engine's statuses and objectives (the differential suite in
/// tests/lp/solver_differential_test.cpp pins this to 1e-9).
///
/// Not thread-safe: one ArenaSolver per thread (the warm state is the
/// point of the class).
class ArenaSolver {
 public:
  explicit ArenaSolver(ArenaConfig config = {});
  ~ArenaSolver();
  ArenaSolver(const ArenaSolver&) = delete;
  ArenaSolver& operator=(const ArenaSolver&) = delete;
  // Movable so long-lived owners (BillCapper, region capper vectors) can be
  // moved without losing their warm state.
  ArenaSolver(ArenaSolver&&) noexcept;
  ArenaSolver& operator=(ArenaSolver&&) noexcept;

  /// Solves `problem` (MILP via branch-and-bound; a problem without
  /// integer marks is solved at the root only). Status semantics mirror
  /// lp::solve_milp_reference: kOptimal/kInfeasible/kUnbounded, kNodeLimit
  /// and kTimeLimit with the best incumbent, plus kArenaExhausted when a
  /// configured byte cap would be exceeded. Duals are not populated.
  Solution solve(const Problem& problem, const MilpOptions& options = {});

  /// Drops any warm state; the next solve starts cold. Also called
  /// implicitly when a solve's structure does not match the resident one.
  void invalidate() noexcept;

  const ArenaStats& stats() const noexcept;

  /// Current arena footprint in bytes (tableau + cost row + node pool).
  std::size_t arena_bytes() const noexcept;

  const ArenaConfig& config() const noexcept { return config_; }

 private:
  struct Impl;
  ArenaConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace billcap::lp
