#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace billcap::lp {

namespace {

/// How an original variable maps onto the nonnegative standard-form space.
struct VarMap {
  enum class Kind {
    kShifted,   ///< x = lower + x'          (finite lower bound)
    kMirrored,  ///< x = upper - x'          (lower = -inf, finite upper)
    kSplit,     ///< x = x'_pos - x'_neg     (free variable)
  };
  Kind kind = Kind::kShifted;
  int primary = -1;    ///< standard-form column
  int secondary = -1;  ///< second column for kSplit
  double offset = 0.0; ///< lower (kShifted) or upper (kMirrored)
};

/// A standard-form row: sum(a_j x'_j) relation rhs, rhs >= 0 after
/// normalization. `orig_row` is -1 for synthesized upper-bound rows.
struct StdRow {
  std::vector<double> coefs;  // dense over standard-form columns
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  int orig_row = -1;
  bool sign_flipped = false;
};

constexpr double kNegInf = -kInfinity;

/// The dense two-phase tableau. Columns: [structural | slack/surplus |
/// artificial | rhs]. Row 0..m-1 are constraints; cost row kept separately.
class Tableau {
 public:
  Tableau(std::vector<StdRow> rows, std::vector<double> std_costs,
          const SimplexOptions& options)
      : options_(options), rows_meta_(std::move(rows)),
        std_costs_(std::move(std_costs)) {
    build();
  }

  /// Runs phase 1 + phase 2. Returns the status; on kOptimal the primal
  /// standard-form values and per-row duals can be queried.
  SolveStatus run() {
    // Phase 1: minimize sum of artificials (only needed if any exist).
    if (num_artificial_ > 0) {
      load_phase1_costs();
      const SolveStatus st = iterate(/*phase1=*/true);
      if (st != SolveStatus::kOptimal) return st;
      if (cost_value_ > options_.feasibility_tol) return SolveStatus::kInfeasible;
      purge_artificials_from_basis();
    }
    load_phase2_costs();
    return iterate(/*phase1=*/false);
  }

  /// Value of standard-form variable j at the current basis.
  double std_value(int j) const {
    for (int i = 0; i < m_; ++i)
      if (basis_[static_cast<std::size_t>(i)] == j) return rhs(i);
    return 0.0;
  }

  /// All standard-form structural values.
  std::vector<double> std_values(int n_struct) const {
    std::vector<double> x(static_cast<std::size_t>(n_struct), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < n_struct) x[static_cast<std::size_t>(b)] = rhs(i);
    }
    return x;
  }

  /// Dual value for tableau row i (w.r.t. the normalized row): y_i equals
  /// minus the reduced cost of that row's identity column (slack for <=
  /// rows, artificial otherwise).
  double dual(int i) const {
    const int col = identity_col_[static_cast<std::size_t>(i)];
    return -cost_row_[static_cast<std::size_t>(col)];
  }

  long iterations() const noexcept { return iterations_; }
  double objective() const noexcept { return cost_value_; }

 private:
  double& at(int i, int j) { return tab_[static_cast<std::size_t>(i) * stride_ + static_cast<std::size_t>(j)]; }
  double at(int i, int j) const { return tab_[static_cast<std::size_t>(i) * stride_ + static_cast<std::size_t>(j)]; }
  double rhs(int i) const { return at(i, n_total_); }

  void build() {
    m_ = static_cast<int>(rows_meta_.size());
    n_struct_ = static_cast<int>(std_costs_.size());

    // Count slack/surplus and artificial columns.
    int n_slack = 0;
    num_artificial_ = 0;
    for (const auto& r : rows_meta_) {
      if (r.relation != Relation::kEqual) ++n_slack;
      if (r.relation != Relation::kLessEqual) ++num_artificial_;
    }
    n_total_ = n_struct_ + n_slack + num_artificial_;
    stride_ = static_cast<std::size_t>(n_total_) + 1;
    tab_.assign(static_cast<std::size_t>(m_) * stride_, 0.0);
    cost_row_.assign(stride_, 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);
    identity_col_.assign(static_cast<std::size_t>(m_), -1);
    is_artificial_.assign(static_cast<std::size_t>(n_total_), false);

    int next_slack = n_struct_;
    int next_art = n_struct_ + n_slack;
    first_artificial_ = next_art;
    for (int i = 0; i < m_; ++i) {
      const StdRow& r = rows_meta_[static_cast<std::size_t>(i)];
      for (int j = 0; j < n_struct_; ++j) at(i, j) = r.coefs[static_cast<std::size_t>(j)];
      at(i, n_total_) = r.rhs;
      switch (r.relation) {
        case Relation::kLessEqual:
          at(i, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack;
          identity_col_[static_cast<std::size_t>(i)] = next_slack;
          ++next_slack;
          break;
        case Relation::kGreaterEqual:
          at(i, next_slack) = -1.0;
          ++next_slack;
          at(i, next_art) = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(i)] = next_art;
          identity_col_[static_cast<std::size_t>(i)] = next_art;
          ++next_art;
          break;
        case Relation::kEqual:
          at(i, next_art) = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(i)] = next_art;
          identity_col_[static_cast<std::size_t>(i)] = next_art;
          ++next_art;
          break;
      }
    }
  }

  void load_phase1_costs() {
    std::fill(cost_row_.begin(), cost_row_.end(), 0.0);
    cost_value_ = 0.0;
    // c_j = 1 for artificials; express over the starting basis by
    // subtracting every row whose basic variable is artificial.
    for (int j = first_artificial_; j < n_total_; ++j)
      cost_row_[static_cast<std::size_t>(j)] = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (!is_artificial_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])]) continue;
      for (int j = 0; j <= n_total_; ++j)
        cost_row_[static_cast<std::size_t>(j)] -= at(i, j);
    }
    cost_value_ = -cost_row_[static_cast<std::size_t>(n_total_)];
    cost_row_[static_cast<std::size_t>(n_total_)] = 0.0;
  }

  void load_phase2_costs() {
    std::fill(cost_row_.begin(), cost_row_.end(), 0.0);
    for (int j = 0; j < n_struct_; ++j)
      cost_row_[static_cast<std::size_t>(j)] = std_costs_[static_cast<std::size_t>(j)];
    // Express over the current basis: rc = c - c_B * B^-1 A.
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double cb = (b < n_struct_) ? std_costs_[static_cast<std::size_t>(b)] : 0.0;
      if (cb == 0.0) continue;
      for (int j = 0; j <= n_total_; ++j)
        cost_row_[static_cast<std::size_t>(j)] -= cb * at(i, j);
    }
    cost_value_ = -cost_row_[static_cast<std::size_t>(n_total_)];
    cost_row_[static_cast<std::size_t>(n_total_)] = 0.0;
  }

  /// After a feasible phase 1, pivot basic artificials (at value 0) out of
  /// the basis where possible; rows with no eligible pivot are redundant and
  /// keep a zero-valued artificial that can never re-enter.
  void purge_artificials_from_basis() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (!is_artificial_[static_cast<std::size_t>(b)]) continue;
      int entering = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::abs(at(i, j)) > options_.pivot_tol) {
          entering = j;
          break;
        }
      }
      if (entering >= 0) pivot(i, entering);
    }
  }

  /// One simplex phase. Dantzig rule with a Bland fallback when stalling.
  SolveStatus iterate(bool phase1) {
    long since_improvement = 0;
    double best_seen = cost_value_;
    bool bland = false;
    for (;;) {
      if (iterations_ >= options_.max_iterations)
        return SolveStatus::kIterationLimit;

      const int entering = choose_entering(phase1, bland);
      if (entering < 0) return SolveStatus::kOptimal;

      const int leaving = choose_leaving(entering);
      if (leaving < 0) return SolveStatus::kUnbounded;

      pivot(leaving, entering);
      ++iterations_;

      if (cost_value_ < best_seen - 1e-12) {
        best_seen = cost_value_;
        since_improvement = 0;
        bland = false;
      } else if (++since_improvement > options_.stall_threshold) {
        bland = true;
      }
    }
  }

  int choose_entering(bool phase1, bool bland) const {
    int best = -1;
    double best_rc = -options_.optimality_tol;
    for (int j = 0; j < n_total_; ++j) {
      if (!phase1 && is_artificial_[static_cast<std::size_t>(j)]) continue;
      const double rc = cost_row_[static_cast<std::size_t>(j)];
      if (rc < -options_.optimality_tol) {
        if (bland) return j;  // first (smallest index) negative column
        if (rc < best_rc) {
          best_rc = rc;
          best = j;
        }
      }
    }
    return best;
  }

  /// Ratio test: exact minimum first, then the smallest basis index among
  /// rows within one absolute epsilon of that minimum. The window is
  /// anchored at the true minimum — scanning with a window that re-centers
  /// on every accepted tie lets `best_ratio` drift by ±1e-12 per acceptance
  /// on degenerate problems, making the chosen row depend on row order and
  /// admitting cycling. The anchored rule is pinned by
  /// tests/lp/simplex_test.cpp (degenerate/cycling regressions) and the
  /// arena solver implements the identical rule.
  int choose_leaving(int entering) const {
    double min_ratio = kInfinity;
    for (int i = 0; i < m_; ++i) {
      const double a = at(i, entering);
      if (a <= options_.pivot_tol) continue;
      // Clamp tiny negative rhs (round-off) to zero so the ratio test never
      // produces a negative step.
      const double ratio = std::max(rhs(i), 0.0) / a;
      if (ratio < min_ratio) min_ratio = ratio;
    }
    if (min_ratio == kInfinity) return -1;
    int best = -1;
    for (int i = 0; i < m_; ++i) {
      const double a = at(i, entering);
      if (a <= options_.pivot_tol) continue;
      const double ratio = std::max(rhs(i), 0.0) / a;
      if (ratio <= min_ratio + 1e-12 &&
          (best < 0 || basis_[static_cast<std::size_t>(i)] <
                           basis_[static_cast<std::size_t>(best)]))
        best = i;
    }
    return best;
  }

  void pivot(int leaving_row, int entering_col) {
    const double p = at(leaving_row, entering_col);
    const double inv = 1.0 / p;
    for (int j = 0; j <= n_total_; ++j) at(leaving_row, j) *= inv;
    at(leaving_row, entering_col) = 1.0;  // kill round-off on the pivot

    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double factor = at(i, entering_col);
      if (factor == 0.0) continue;
      for (int j = 0; j <= n_total_; ++j)
        at(i, j) -= factor * at(leaving_row, j);
      at(i, entering_col) = 0.0;
    }
    const double cfactor = cost_row_[static_cast<std::size_t>(entering_col)];
    if (cfactor != 0.0) {
      for (int j = 0; j <= n_total_; ++j)
        cost_row_[static_cast<std::size_t>(j)] -= cfactor * at(leaving_row, j);
      cost_row_[static_cast<std::size_t>(entering_col)] = 0.0;
      cost_value_ += cfactor * rhs(leaving_row);
    }
    basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  SimplexOptions options_;
  std::vector<StdRow> rows_meta_;
  std::vector<double> std_costs_;

  std::vector<double> tab_;
  std::vector<double> cost_row_;  // reduced costs; [n_total] unused after load
  std::vector<int> basis_;
  std::vector<int> identity_col_;
  std::vector<bool> is_artificial_;
  std::size_t stride_ = 0;
  int m_ = 0;
  int n_struct_ = 0;
  int n_total_ = 0;
  int num_artificial_ = 0;
  int first_artificial_ = 0;
  double cost_value_ = 0.0;
  long iterations_ = 0;
};

}  // namespace

Solution solve_lp(const Problem& problem, const SimplexOptions& options) {
  const int n = problem.num_variables();
  const int m = problem.num_constraints();
  const bool maximize = problem.sense() == Sense::kMaximize;

  // --- Map original variables to nonnegative standard-form columns. -------
  std::vector<VarMap> maps(static_cast<std::size_t>(n));
  int n_struct = 0;
  for (int j = 0; j < n; ++j) {
    const Variable& v = problem.variable(j);
    VarMap& mp = maps[static_cast<std::size_t>(j)];
    if (v.lower == kNegInf && v.upper == kInfinity) {
      mp.kind = VarMap::Kind::kSplit;
      mp.primary = n_struct++;
      mp.secondary = n_struct++;
    } else if (v.lower == kNegInf) {
      mp.kind = VarMap::Kind::kMirrored;
      mp.primary = n_struct++;
      mp.offset = v.upper;
    } else {
      mp.kind = VarMap::Kind::kShifted;
      mp.primary = n_struct++;
      mp.offset = v.lower;
    }
  }

  // --- Standard-form objective (always minimize). The constant parts from
  // the variable offsets are not tracked: the reported objective is
  // recomputed from the recovered primal values, which is both simpler and
  // immune to sign conventions.
  std::vector<double> std_costs(static_cast<std::size_t>(n_struct), 0.0);
  for (int j = 0; j < n; ++j) {
    const Variable& v = problem.variable(j);
    const VarMap& mp = maps[static_cast<std::size_t>(j)];
    const double c = maximize ? -v.objective : v.objective;
    switch (mp.kind) {
      case VarMap::Kind::kShifted:
        std_costs[static_cast<std::size_t>(mp.primary)] += c;
        break;
      case VarMap::Kind::kMirrored:
        std_costs[static_cast<std::size_t>(mp.primary)] -= c;
        break;
      case VarMap::Kind::kSplit:
        std_costs[static_cast<std::size_t>(mp.primary)] += c;
        std_costs[static_cast<std::size_t>(mp.secondary)] -= c;
        break;
    }
  }

  // --- Standard-form rows. --------------------------------------------------
  auto expand_row = [&](const std::vector<Term>& terms, Relation rel,
                        double rhs_value, int orig_row) {
    StdRow row;
    row.coefs.assign(static_cast<std::size_t>(n_struct), 0.0);
    row.relation = rel;
    row.rhs = rhs_value;
    row.orig_row = orig_row;
    for (const Term& t : terms) {
      const VarMap& mp = maps[static_cast<std::size_t>(t.var)];
      switch (mp.kind) {
        case VarMap::Kind::kShifted:
          row.coefs[static_cast<std::size_t>(mp.primary)] += t.coef;
          row.rhs -= t.coef * mp.offset;
          break;
        case VarMap::Kind::kMirrored:
          row.coefs[static_cast<std::size_t>(mp.primary)] -= t.coef;
          row.rhs -= t.coef * mp.offset;
          break;
        case VarMap::Kind::kSplit:
          row.coefs[static_cast<std::size_t>(mp.primary)] += t.coef;
          row.coefs[static_cast<std::size_t>(mp.secondary)] -= t.coef;
          break;
      }
    }
    if (row.rhs < 0.0) {
      for (double& c : row.coefs) c = -c;
      row.rhs = -row.rhs;
      row.sign_flipped = true;
      if (row.relation == Relation::kLessEqual)
        row.relation = Relation::kGreaterEqual;
      else if (row.relation == Relation::kGreaterEqual)
        row.relation = Relation::kLessEqual;
    }
    return row;
  };

  std::vector<StdRow> rows;
  rows.reserve(static_cast<std::size_t>(m) + static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    const Constraint& c = problem.constraint(i);
    rows.push_back(expand_row(c.terms, c.relation, c.rhs, i));
  }
  // Finite upper bounds become explicit rows (for shifted variables); a
  // mirrored variable's finite *lower* bound likewise.
  for (int j = 0; j < n; ++j) {
    const Variable& v = problem.variable(j);
    const VarMap& mp = maps[static_cast<std::size_t>(j)];
    if (mp.kind == VarMap::Kind::kShifted && v.upper != kInfinity) {
      // Includes fixed variables (upper == lower): the row pins x' at 0.
      rows.push_back(expand_row({{j, 1.0}}, Relation::kLessEqual, v.upper, -1));
    } else if (mp.kind == VarMap::Kind::kMirrored && v.lower != kNegInf) {
      rows.push_back(
          expand_row({{j, 1.0}}, Relation::kGreaterEqual, v.lower, -1));
    }
  }

  Tableau tableau(rows, std_costs, options);
  const SolveStatus status = tableau.run();

  Solution sol;
  sol.status = status;
  sol.iterations = tableau.iterations();
  if (status != SolveStatus::kOptimal) return sol;

  // --- Recover original-space primal values. --------------------------------
  const std::vector<double> xs = tableau.std_values(n_struct);
  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const VarMap& mp = maps[static_cast<std::size_t>(j)];
    double value = 0.0;
    switch (mp.kind) {
      case VarMap::Kind::kShifted:
        value = mp.offset + xs[static_cast<std::size_t>(mp.primary)];
        break;
      case VarMap::Kind::kMirrored:
        value = mp.offset - xs[static_cast<std::size_t>(mp.primary)];
        break;
      case VarMap::Kind::kSplit:
        value = xs[static_cast<std::size_t>(mp.primary)] -
                xs[static_cast<std::size_t>(mp.secondary)];
        break;
    }
    sol.x[static_cast<std::size_t>(j)] = value;
  }
  sol.objective = problem.objective_value(sol.x);

  // --- Duals for the original rows. -----------------------------------------
  sol.duals.assign(static_cast<std::size_t>(m), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const int orig = rows[r].orig_row;
    if (orig < 0) continue;
    double y = tableau.dual(static_cast<int>(r));
    if (rows[r].sign_flipped) y = -y;
    if (maximize) y = -y;
    sol.duals[static_cast<std::size_t>(orig)] = y;
  }
  return sol;
}

}  // namespace billcap::lp
