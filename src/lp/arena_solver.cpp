#include "lp/arena_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "lp/presolve.hpp"

namespace billcap::lp {

namespace {

constexpr double kNegInf = -kInfinity;

/// Dual-simplex pivot budget for one warm re-solve. A handful of pivots is
/// the expected case; anything past this bound smells like cycling or a
/// badly stale basis, and the caller falls back to the cold two-phase path.
long dual_pivot_budget(int m) { return std::max<long>(200, 4L * m); }

/// Minimum |pivot| the warm paths will accept. The resident tableau *is*
/// the factorization: one pivot on a 1e-8 element scales a row by 1e8 and
/// silently destroys B^-1 for every later warm re-solve (observed as bogus
/// node bounds on the paper's MILPs). Warm repairs refuse such pivots and
/// report a repair failure so the caller rebuilds cold; the cold two-phase
/// path keeps the legacy pivot_tol rule and bit-for-bit legacy behavior.
constexpr double kStablePivot = 1e-7;

}  // namespace

/// All solver state lives here, in flat capacity-reserved storage. The
/// tableau layout matches the legacy simplex exactly — columns
/// [structural | slack/surplus | artificial | rhs], rows normalized to
/// rhs >= 0 at build time — so the cold path reproduces the legacy engine's
/// pivot sequence bit for bit, and the columns that started as the identity
/// (identity_col_) read back B^-1 for the warm rhs swaps.
struct ArenaSolver::Impl {
  explicit Impl(const ArenaConfig& cfg) : config(cfg) {}

  ArenaConfig config;
  ArenaStats stat;

  // ---- variable mapping onto the nonnegative standard form --------------
  enum class Kind : unsigned char { kShifted, kMirrored, kSplit };
  struct VarMap {
    Kind kind = Kind::kShifted;
    int primary = -1;
    int secondary = -1;
  };
  std::vector<VarMap> maps;
  int n_orig = 0;
  int n_struct = 0;

  // ---- std-row metadata: how to recompute a row's rhs from bounds -------
  struct RowMeta {
    int orig_row = -1;   ///< >= 0: problem constraint; -1: synthesized bound
    int bound_var = -1;  ///< original variable of a bound row
    bool flipped = false;
    Relation relation = Relation::kLessEqual;  ///< after the build-time flip
  };
  std::vector<RowMeta> rows;

  // ---- the flat tableau arena -------------------------------------------
  std::vector<double> tab;        ///< m_ x stride_
  std::vector<double> cost_row;   ///< reduced costs
  std::vector<double> std_costs;  ///< current min-sense structural costs
  std::vector<int> basis;
  std::vector<int> identity_col;  ///< per row: the column that was e_i at build
  std::vector<char> is_artificial;
  std::size_t stride = 0;
  int m = 0;
  int n_total = 0;
  int first_artificial = 0;
  int num_artificial = 0;
  double cost_value = 0.0;
  long iterations_this_solve = 0;
  long lp_iters = 0;  ///< pivots of the LP currently being solved (both phases)

  /// Tableau holds phase-2 reduced costs over a consistent basis, so a
  /// dual-simplex warm re-solve from it is sound.
  bool resident_valid = false;
  /// Additionally primal-feasible at the root rhs (parked): a follow-up
  /// solve may run the cost pass primal from here.
  bool parked = false;
  /// Every integer variable is kShifted with a finite upper bound, so
  /// branching moves only the rhs and children can warm start.
  bool fast_path_ok = false;
  /// The previous solve's optimal integer assignment, positional over
  /// int_vars. On the next warm root one dual re-solve with the integers
  /// pinned to this pattern seeds the incumbent, so branch-and-bound
  /// starts with a strong upper bound instead of discovering one node by
  /// node — the pattern rarely moves hour over hour.
  std::vector<double> seed_values;
  bool has_seed = false;

  // ---- structural signature of the resident problem ---------------------
  struct VarSig {
    unsigned char kind = 0;
    bool is_integer = false;
    bool has_bound_row = false;
  };
  std::vector<VarSig> sig_vars;
  std::vector<Relation> sig_rel;
  std::vector<std::vector<Term>> sig_terms;

  // ---- per-solve working buffers (reserved once per shape) --------------
  std::vector<double> cur_lo, cur_hi;
  std::vector<double> root_lo, root_hi;
  std::vector<int> int_vars;
  std::vector<double> work_rhs;  ///< b' in the build-time row convention
  std::vector<double> work_xb;
  std::vector<double> work_x;    ///< original-space recovery
  std::vector<double> row_buf;   ///< dense std coefficients of one row
  std::vector<double> snap_buf;  ///< incumbent snapping scratch

  // ---- pooled branch-and-bound nodes ------------------------------------
  struct NodeSlot {
    int var = -1;  ///< branched variable; -1 for the root
    double lo = 0.0, hi = 0.0;
    int parent = -1;
    double parent_bound = kNegInf;
  };
  std::vector<NodeSlot> pool;
  std::vector<int> dfs;  ///< open nodes, indices into pool

  // =======================================================================

  double& at(int i, int j) {
    return tab[static_cast<std::size_t>(i) * stride + static_cast<std::size_t>(j)];
  }
  double at(int i, int j) const {
    return tab[static_cast<std::size_t>(i) * stride + static_cast<std::size_t>(j)];
  }
  double rhs(int i) const { return at(i, n_total); }

  std::size_t tableau_bytes(int rows_needed, std::size_t stride_needed) const {
    return (static_cast<std::size_t>(rows_needed) + 1) * stride_needed *
           sizeof(double);
  }
  std::size_t footprint() const {
    return tab.capacity() * sizeof(double) + cost_row.capacity() * sizeof(double) +
           pool.capacity() * sizeof(NodeSlot);
  }

  static Kind kind_of(const Variable& v) {
    if (v.lower == kNegInf && v.upper == kInfinity) return Kind::kSplit;
    if (v.lower == kNegInf) return Kind::kMirrored;
    return Kind::kShifted;
  }
  static bool has_bound_row(const Variable& v, Kind k) {
    return (k == Kind::kShifted && v.upper != kInfinity) ||
           (k == Kind::kMirrored && v.lower != kNegInf);
  }

  double offset_of(int j) const {
    switch (maps[static_cast<std::size_t>(j)].kind) {
      case Kind::kShifted: return cur_lo[static_cast<std::size_t>(j)];
      case Kind::kMirrored: return cur_hi[static_cast<std::size_t>(j)];
      case Kind::kSplit: return 0.0;
    }
    return 0.0;
  }

  // ---- structure adoption ------------------------------------------------

  /// True when `problem` has the same standard-form structure as the
  /// resident tableau: same variable kinds/bound-row pattern and bitwise
  /// identical constraint coefficients. Bound *values* and every rhs may
  /// differ — those are exactly what the warm start re-loads.
  bool signature_matches(const Problem& problem) const {
    if (static_cast<int>(sig_vars.size()) != problem.num_variables())
      return false;
    if (static_cast<int>(sig_rel.size()) != problem.num_constraints())
      return false;
    for (int j = 0; j < problem.num_variables(); ++j) {
      const Variable& v = problem.variable(j);
      const Kind k = kind_of(v);
      const VarSig& s = sig_vars[static_cast<std::size_t>(j)];
      if (static_cast<unsigned char>(k) != s.kind) return false;
      if (v.is_integer != s.is_integer) return false;
      if (has_bound_row(v, k) != s.has_bound_row) return false;
    }
    for (int i = 0; i < problem.num_constraints(); ++i) {
      const Constraint& c = problem.constraint(i);
      if (c.relation != sig_rel[static_cast<std::size_t>(i)]) return false;
      const auto& terms = sig_terms[static_cast<std::size_t>(i)];
      if (terms.size() != c.terms.size()) return false;
      for (std::size_t t = 0; t < terms.size(); ++t) {
        if (terms[t].var != c.terms[t].var) return false;
        if (terms[t].coef != c.terms[t].coef) return false;
      }
    }
    return true;
  }

  void capture_signature(const Problem& problem) {
    const std::size_t n = static_cast<std::size_t>(problem.num_variables());
    const std::size_t mm = static_cast<std::size_t>(problem.num_constraints());
    sig_vars.assign(n, VarSig{});
    for (int j = 0; j < problem.num_variables(); ++j) {
      const Variable& v = problem.variable(j);
      const Kind k = kind_of(v);
      sig_vars[static_cast<std::size_t>(j)] = VarSig{
          static_cast<unsigned char>(k), v.is_integer, has_bound_row(v, k)};
    }
    sig_rel.resize(mm);
    sig_terms.resize(mm);
    for (int i = 0; i < problem.num_constraints(); ++i) {
      const Constraint& c = problem.constraint(i);
      sig_rel[static_cast<std::size_t>(i)] = c.relation;
      sig_terms[static_cast<std::size_t>(i)] = c.terms;
    }
  }

  void load_bounds(const Problem& problem) {
    const std::size_t n = static_cast<std::size_t>(problem.num_variables());
    n_orig = problem.num_variables();
    root_lo.resize(n);
    root_hi.resize(n);
    int_vars.clear();
    int_vars.reserve(n);
    for (int j = 0; j < problem.num_variables(); ++j) {
      const Variable& v = problem.variable(j);
      root_lo[static_cast<std::size_t>(j)] = v.lower;
      root_hi[static_cast<std::size_t>(j)] = v.upper;
      if (v.is_integer) int_vars.push_back(j);
    }
    cur_lo = root_lo;
    cur_hi = root_hi;
  }

  void build_maps() {
    maps.resize(static_cast<std::size_t>(n_orig));
    n_struct = 0;
    fast_path_ok = true;
    for (int j = 0; j < n_orig; ++j) {
      VarMap& mp = maps[static_cast<std::size_t>(j)];
      const double lo = cur_lo[static_cast<std::size_t>(j)];
      const double hi = cur_hi[static_cast<std::size_t>(j)];
      if (lo == kNegInf && hi == kInfinity) {
        mp.kind = Kind::kSplit;
        mp.primary = n_struct++;
        mp.secondary = n_struct++;
      } else if (lo == kNegInf) {
        mp.kind = Kind::kMirrored;
        mp.primary = n_struct++;
        mp.secondary = -1;
      } else {
        mp.kind = Kind::kShifted;
        mp.primary = n_struct++;
        mp.secondary = -1;
      }
    }
    for (const int j : int_vars) {
      const VarMap& mp = maps[static_cast<std::size_t>(j)];
      if (mp.kind != Kind::kShifted ||
          cur_hi[static_cast<std::size_t>(j)] == kInfinity)
        fast_path_ok = false;
    }
  }

  void build_std_costs(const Problem& problem) {
    const bool maximize = problem.sense() == Sense::kMaximize;
    std_costs.assign(static_cast<std::size_t>(n_struct), 0.0);
    for (int j = 0; j < n_orig; ++j) {
      const VarMap& mp = maps[static_cast<std::size_t>(j)];
      const double c = maximize ? -problem.variable(j).objective
                                : problem.variable(j).objective;
      switch (mp.kind) {
        case Kind::kShifted:
          std_costs[static_cast<std::size_t>(mp.primary)] += c;
          break;
        case Kind::kMirrored:
          std_costs[static_cast<std::size_t>(mp.primary)] -= c;
          break;
        case Kind::kSplit:
          std_costs[static_cast<std::size_t>(mp.primary)] += c;
          std_costs[static_cast<std::size_t>(mp.secondary)] -= c;
          break;
      }
    }
  }

  /// Raw (pre-flip) std rhs of row meta `rm` under the current bounds.
  double raw_rhs(const Problem& problem, const RowMeta& rm) const {
    if (rm.orig_row >= 0) {
      const Constraint& c = problem.constraint(rm.orig_row);
      double r = c.rhs;
      for (const Term& t : c.terms) r -= t.coef * offset_of(t.var);
      return r;
    }
    const std::size_t v = static_cast<std::size_t>(rm.bound_var);
    if (maps[v].kind == Kind::kShifted) return cur_hi[v] - cur_lo[v];
    return cur_lo[v] - cur_hi[v];  // mirrored lower-bound row
  }

  /// Recomputes every row's rhs under the current bounds, in the resident
  /// build's sign convention.
  void compute_rhs(const Problem& problem) {
    work_rhs.resize(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k) {
      const RowMeta& rm = rows[static_cast<std::size_t>(k)];
      const double r = raw_rhs(problem, rm);
      work_rhs[static_cast<std::size_t>(k)] = rm.flipped ? -r : r;
    }
  }

  // ---- cold build: legacy two-phase from scratch -------------------------

  /// Builds the tableau from `problem` under the current bounds and runs
  /// phase 1 + phase 2. Mirrors the legacy simplex construction exactly
  /// (including the rhs-sign row flips). Returns kIterationLimit-class
  /// statuses as the legacy engine does; kArenaExhausted when a configured
  /// byte cap would be exceeded.
  SolveStatus cold_build(const Problem& problem, const SimplexOptions& lp) {
    lp_iters = 0;
    build_maps();

    // Row metas: original constraints, then bound rows.
    rows.clear();
    rows.reserve(static_cast<std::size_t>(problem.num_constraints() + n_orig));
    for (int i = 0; i < problem.num_constraints(); ++i) {
      RowMeta rm;
      rm.orig_row = i;
      rm.relation = problem.constraint(i).relation;
      rows.push_back(rm);
    }
    for (int j = 0; j < n_orig; ++j) {
      const VarMap& mp = maps[static_cast<std::size_t>(j)];
      const double hi = cur_hi[static_cast<std::size_t>(j)];
      const double lo = cur_lo[static_cast<std::size_t>(j)];
      if (mp.kind == Kind::kShifted && hi != kInfinity) {
        RowMeta rm;
        rm.bound_var = j;
        rm.relation = Relation::kLessEqual;
        rows.push_back(rm);
      } else if (mp.kind == Kind::kMirrored && lo != kNegInf) {
        RowMeta rm;
        rm.bound_var = j;
        rm.relation = Relation::kGreaterEqual;
        rows.push_back(rm);
      }
    }
    m = static_cast<int>(rows.size());

    // Decide flips and count slack/artificial columns.
    int n_slack = 0;
    num_artificial = 0;
    for (RowMeta& rm : rows) {
      rm.flipped = false;
      rm.relation = rm.orig_row >= 0 ? problem.constraint(rm.orig_row).relation
                                     : rm.relation;
      if (rm.bound_var >= 0)
        rm.relation = maps[static_cast<std::size_t>(rm.bound_var)].kind ==
                              Kind::kShifted
                          ? Relation::kLessEqual
                          : Relation::kGreaterEqual;
      const double r = raw_rhs(problem, rm);
      if (r < 0.0) {
        rm.flipped = true;
        if (rm.relation == Relation::kLessEqual)
          rm.relation = Relation::kGreaterEqual;
        else if (rm.relation == Relation::kGreaterEqual)
          rm.relation = Relation::kLessEqual;
      }
      if (rm.relation != Relation::kEqual) ++n_slack;
      if (rm.relation != Relation::kLessEqual) ++num_artificial;
    }
    n_total = n_struct + n_slack + num_artificial;
    stride = static_cast<std::size_t>(n_total) + 1;
    first_artificial = n_struct + n_slack;

    if (config.max_arena_bytes != 0 &&
        tableau_bytes(m, stride) + pool.capacity() * sizeof(NodeSlot) >
            config.max_arena_bytes) {
      resident_valid = false;
      parked = false;
      return SolveStatus::kArenaExhausted;
    }

    tab.assign(static_cast<std::size_t>(m) * stride, 0.0);
    cost_row.assign(stride, 0.0);
    basis.assign(static_cast<std::size_t>(m), -1);
    identity_col.assign(static_cast<std::size_t>(m), -1);
    is_artificial.assign(static_cast<std::size_t>(n_total), 0);
    row_buf.assign(static_cast<std::size_t>(n_struct), 0.0);
    work_rhs.resize(static_cast<std::size_t>(m));
    work_xb.resize(static_cast<std::size_t>(m));

    int next_slack = n_struct;
    int next_art = first_artificial;
    for (int i = 0; i < m; ++i) {
      const RowMeta& rm = rows[static_cast<std::size_t>(i)];
      // Dense std coefficients of this row.
      std::fill(row_buf.begin(), row_buf.end(), 0.0);
      if (rm.orig_row >= 0) {
        for (const Term& t : problem.constraint(rm.orig_row).terms) {
          const VarMap& mp = maps[static_cast<std::size_t>(t.var)];
          switch (mp.kind) {
            case Kind::kShifted:
              row_buf[static_cast<std::size_t>(mp.primary)] += t.coef;
              break;
            case Kind::kMirrored:
              row_buf[static_cast<std::size_t>(mp.primary)] -= t.coef;
              break;
            case Kind::kSplit:
              row_buf[static_cast<std::size_t>(mp.primary)] += t.coef;
              row_buf[static_cast<std::size_t>(mp.secondary)] -= t.coef;
              break;
          }
        }
      } else {
        const VarMap& mp = maps[static_cast<std::size_t>(rm.bound_var)];
        row_buf[static_cast<std::size_t>(mp.primary)] +=
            mp.kind == Kind::kShifted ? 1.0 : -1.0;
      }
      double r = raw_rhs(problem, rm);
      if (rm.flipped) {
        for (double& c : row_buf) c = -c;
        r = -r;
      }
      for (int j = 0; j < n_struct; ++j)
        at(i, j) = row_buf[static_cast<std::size_t>(j)];
      at(i, n_total) = r;

      switch (rm.relation) {
        case Relation::kLessEqual:
          at(i, next_slack) = 1.0;
          basis[static_cast<std::size_t>(i)] = next_slack;
          identity_col[static_cast<std::size_t>(i)] = next_slack;
          ++next_slack;
          break;
        case Relation::kGreaterEqual:
          at(i, next_slack) = -1.0;
          ++next_slack;
          at(i, next_art) = 1.0;
          is_artificial[static_cast<std::size_t>(next_art)] = 1;
          basis[static_cast<std::size_t>(i)] = next_art;
          identity_col[static_cast<std::size_t>(i)] = next_art;
          ++next_art;
          break;
        case Relation::kEqual:
          at(i, next_art) = 1.0;
          is_artificial[static_cast<std::size_t>(next_art)] = 1;
          basis[static_cast<std::size_t>(i)] = next_art;
          identity_col[static_cast<std::size_t>(i)] = next_art;
          ++next_art;
          break;
      }
    }

    build_std_costs(problem);
    if (num_artificial > 0) {
      load_phase1_costs();
      const SolveStatus st = primal_iterate(/*phase1=*/true, lp);
      if (st != SolveStatus::kOptimal) {
        resident_valid = false;
        return st;
      }
      if (cost_value > lp.feasibility_tol) {
        resident_valid = false;
        return SolveStatus::kInfeasible;
      }
      purge_artificials(lp);
    }
    load_phase2_costs();
    const SolveStatus st = primal_iterate(/*phase1=*/false, lp);
    resident_valid = (st == SolveStatus::kOptimal);
    return st;
  }

  void load_phase1_costs() {
    std::fill(cost_row.begin(), cost_row.end(), 0.0);
    for (int j = first_artificial; j < n_total; ++j)
      cost_row[static_cast<std::size_t>(j)] = 1.0;
    for (int i = 0; i < m; ++i) {
      if (!is_artificial[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])])
        continue;
      for (int j = 0; j <= n_total; ++j)
        cost_row[static_cast<std::size_t>(j)] -= at(i, j);
    }
    cost_value = -cost_row[static_cast<std::size_t>(n_total)];
    cost_row[static_cast<std::size_t>(n_total)] = 0.0;
  }

  void load_phase2_costs() {
    std::fill(cost_row.begin(), cost_row.end(), 0.0);
    for (int j = 0; j < n_struct; ++j)
      cost_row[static_cast<std::size_t>(j)] = std_costs[static_cast<std::size_t>(j)];
    for (int i = 0; i < m; ++i) {
      const int b = basis[static_cast<std::size_t>(i)];
      const double cb = (b < n_struct) ? std_costs[static_cast<std::size_t>(b)] : 0.0;
      if (cb == 0.0) continue;
      for (int j = 0; j <= n_total; ++j)
        cost_row[static_cast<std::size_t>(j)] -= cb * at(i, j);
    }
    cost_value = -cost_row[static_cast<std::size_t>(n_total)];
    cost_row[static_cast<std::size_t>(n_total)] = 0.0;
  }

  void purge_artificials(const SimplexOptions& lp) {
    for (int i = 0; i < m; ++i) {
      const int b = basis[static_cast<std::size_t>(i)];
      if (!is_artificial[static_cast<std::size_t>(b)]) continue;
      int entering = -1;
      for (int j = 0; j < first_artificial; ++j) {
        if (std::abs(at(i, j)) > lp.pivot_tol) {
          entering = j;
          break;
        }
      }
      if (entering >= 0) pivot(i, entering);
    }
  }

  // ---- primal simplex (legacy rules, drift-free ratio tie-break) --------

  /// `stable_pivot` > 0 makes the iteration refuse pivot elements below
  /// that magnitude (returning kIterationLimit, i.e. "repair failed, go
  /// cold"). Warm polishing passes set it; the cold path leaves it 0 to
  /// match the legacy engine's pivot sequence exactly.
  SolveStatus primal_iterate(bool phase1, const SimplexOptions& lp,
                             double stable_pivot = 0.0) {
    long since_improvement = 0;
    double best_seen = cost_value;
    bool bland = false;
    for (;;) {
      if (lp_iters >= lp.max_iterations) return SolveStatus::kIterationLimit;

      const int entering = choose_entering(phase1, bland, lp);
      if (entering < 0) return SolveStatus::kOptimal;

      const int leaving = choose_leaving(entering, lp);
      if (leaving < 0) return SolveStatus::kUnbounded;

      if (stable_pivot > 0.0 && at(leaving, entering) < stable_pivot)
        return SolveStatus::kIterationLimit;
      pivot(leaving, entering);
      ++lp_iters;
      ++iterations_this_solve;
      ++stat.primal_iterations;

      if (cost_value < best_seen - 1e-12) {
        best_seen = cost_value;
        since_improvement = 0;
        bland = false;
      } else if (++since_improvement > lp.stall_threshold) {
        bland = true;
      }
    }
  }

  int choose_entering(bool phase1, bool bland, const SimplexOptions& lp) const {
    int best = -1;
    double best_rc = -lp.optimality_tol;
    for (int j = 0; j < n_total; ++j) {
      if (!phase1 && is_artificial[static_cast<std::size_t>(j)]) continue;
      const double rc = cost_row[static_cast<std::size_t>(j)];
      if (rc < -lp.optimality_tol) {
        if (bland) return j;
        if (rc < best_rc) {
          best_rc = rc;
          best = j;
        }
      }
    }
    return best;
  }

  /// Exact-minimum ratio test with a smallest-basis-index tie-break inside
  /// one absolute epsilon of the true minimum. Anchoring the window at the
  /// exact minimum (instead of letting it drift with each accepted tie)
  /// keeps degenerate pivots deterministic and cycling-resistant; the same
  /// rule is pinned in the legacy simplex by tests/lp/simplex_test.cpp.
  int choose_leaving(int entering, const SimplexOptions& lp) const {
    double min_ratio = kInfinity;
    for (int i = 0; i < m; ++i) {
      const double a = at(i, entering);
      if (a <= lp.pivot_tol) continue;
      const double ratio = std::max(rhs(i), 0.0) / a;
      if (ratio < min_ratio) min_ratio = ratio;
    }
    if (min_ratio == kInfinity) return -1;
    int best = -1;
    for (int i = 0; i < m; ++i) {
      const double a = at(i, entering);
      if (a <= lp.pivot_tol) continue;
      const double ratio = std::max(rhs(i), 0.0) / a;
      if (ratio <= min_ratio + 1e-12 &&
          (best < 0 || basis[static_cast<std::size_t>(i)] <
                           basis[static_cast<std::size_t>(best)]))
        best = i;
    }
    return best;
  }

  void pivot(int leaving_row, int entering_col) {
    const double p = at(leaving_row, entering_col);
    const double inv = 1.0 / p;
    for (int j = 0; j <= n_total; ++j) at(leaving_row, j) *= inv;
    at(leaving_row, entering_col) = 1.0;

    for (int i = 0; i < m; ++i) {
      if (i == leaving_row) continue;
      const double factor = at(i, entering_col);
      if (factor == 0.0) continue;
      for (int j = 0; j <= n_total; ++j)
        at(i, j) -= factor * at(leaving_row, j);
      at(i, entering_col) = 0.0;
    }
    const double cfactor = cost_row[static_cast<std::size_t>(entering_col)];
    if (cfactor != 0.0) {
      for (int j = 0; j <= n_total; ++j)
        cost_row[static_cast<std::size_t>(j)] -= cfactor * at(leaving_row, j);
      cost_row[static_cast<std::size_t>(entering_col)] = 0.0;
      cost_value += cfactor * rhs(leaving_row);
    }
    basis[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  // ---- dual simplex: repair primal feasibility after an rhs swap --------

  /// Requires a dual-feasible resident tableau (phase-2 reduced costs
  /// >= -tol, which bound branching and rhs swaps preserve). Terminates
  /// kOptimal (primal feasible again), kInfeasible (dual unbounded: no
  /// feasible point for this rhs), or kIterationLimit (budget blown —
  /// caller falls back cold).
  SolveStatus dual_iterate(const SimplexOptions& lp) {
    const long budget = dual_pivot_budget(m);
    long local = 0;
    for (;;) {
      int r = -1;
      double most = -lp.feasibility_tol;
      for (int i = 0; i < m; ++i) {
        const double v = rhs(i);
        if (v < most ||
            (v == most && r >= 0 &&
             basis[static_cast<std::size_t>(i)] <
                 basis[static_cast<std::size_t>(r)])) {
          most = v;
          r = i;
        }
      }
      if (r < 0) return SolveStatus::kOptimal;
      if (++local > budget) return SolveStatus::kIterationLimit;

      // Entering column: exact minimum of rc_j / -a_rj over eligible
      // columns, smallest index inside the epsilon window (same anchored
      // tie-break as the primal ratio test). Only numerically solid pivots
      // (|a| >= kStablePivot) are eligible; kInfeasible is certified only
      // when the row has no negative entry at all.
      double min_ratio = kInfinity;
      bool any_negative = false;
      for (int j = 0; j < n_total; ++j) {
        if (is_artificial[static_cast<std::size_t>(j)]) continue;
        const double a = at(r, j);
        if (a >= -lp.pivot_tol) continue;
        any_negative = true;
        if (a >= -kStablePivot) continue;
        const double ratio =
            std::max(cost_row[static_cast<std::size_t>(j)], 0.0) / (-a);
        if (ratio < min_ratio) min_ratio = ratio;
      }
      if (min_ratio == kInfinity) {
        // Negative entries exist but none is safe to pivot on: the warm
        // repair cannot proceed reliably -- rebuild cold instead.
        return any_negative ? SolveStatus::kIterationLimit
                            : SolveStatus::kInfeasible;
      }
      int e = -1;
      for (int j = 0; j < n_total; ++j) {
        if (is_artificial[static_cast<std::size_t>(j)]) continue;
        const double a = at(r, j);
        if (a >= -kStablePivot) continue;
        const double ratio =
            std::max(cost_row[static_cast<std::size_t>(j)], 0.0) / (-a);
        if (ratio <= min_ratio + 1e-12) {
          e = j;
          break;  // smallest index in the window
        }
      }
      if (e < 0) return SolveStatus::kIterationLimit;
      pivot(r, e);
      ++iterations_this_solve;
      ++stat.dual_iterations;
    }
  }

  /// Swaps a freshly computed rhs (work_rhs) into the resident tableau via
  /// the B^-1 columns and recomputes the objective value. O(m^2).
  void swap_rhs() {
    for (int i = 0; i < m; ++i) {
      double s = 0.0;
      for (int k = 0; k < m; ++k)
        s += at(i, identity_col[static_cast<std::size_t>(k)]) *
             work_rhs[static_cast<std::size_t>(k)];
      work_xb[static_cast<std::size_t>(i)] = s;
    }
    double obj = 0.0;
    for (int i = 0; i < m; ++i) {
      at(i, n_total) = work_xb[static_cast<std::size_t>(i)];
      const int b = basis[static_cast<std::size_t>(i)];
      if (b < n_struct)
        obj += std_costs[static_cast<std::size_t>(b)] *
               work_xb[static_cast<std::size_t>(i)];
    }
    cost_value = obj;
  }

  /// Warm re-solve of the current node's LP: recompute rhs under the
  /// current bounds, swap it in, repair with dual simplex, polish primal.
  SolveStatus warm_eval(const Problem& problem, const SimplexOptions& lp) {
    lp_iters = 0;
    compute_rhs(problem);
    swap_rhs();
    SolveStatus st = dual_iterate(lp);
    if (st != SolveStatus::kOptimal) return st;
    st = primal_iterate(/*phase1=*/false, lp, kStablePivot);
    if (st != SolveStatus::kOptimal) return st;
    // A basic artificial that phase 1 parked at zero (redundant row) may go
    // positive under the new rhs; the "solution" then violates its original
    // constraint and its objective is not a valid node bound. The dual
    // simplex cannot fix this (artificials never re-enter), so surface it
    // as a repair failure and let the caller rebuild cold.
    for (int i = 0; i < m; ++i) {
      if (is_artificial[static_cast<std::size_t>(
              basis[static_cast<std::size_t>(i)])] &&
          rhs(i) > lp.feasibility_tol)
        return SolveStatus::kIterationLimit;
    }
    return SolveStatus::kOptimal;
  }

  // ---- solution recovery -------------------------------------------------

  void recover_x(Solution& sol) {
    work_x.assign(static_cast<std::size_t>(n_orig), 0.0);
    // Structural std values from the basis.
    std::vector<double>& xs = work_xb;  // reuse: xs[col] not needed, scan rows
    (void)xs;
    snap_buf.assign(static_cast<std::size_t>(n_struct), 0.0);
    for (int i = 0; i < m; ++i) {
      const int b = basis[static_cast<std::size_t>(i)];
      if (b < n_struct) snap_buf[static_cast<std::size_t>(b)] = rhs(i);
    }
    for (int j = 0; j < n_orig; ++j) {
      const VarMap& mp = maps[static_cast<std::size_t>(j)];
      double value = 0.0;
      switch (mp.kind) {
        case Kind::kShifted:
          value = cur_lo[static_cast<std::size_t>(j)] +
                  snap_buf[static_cast<std::size_t>(mp.primary)];
          break;
        case Kind::kMirrored:
          value = cur_hi[static_cast<std::size_t>(j)] -
                  snap_buf[static_cast<std::size_t>(mp.primary)];
          break;
        case Kind::kSplit:
          value = snap_buf[static_cast<std::size_t>(mp.primary)] -
                  snap_buf[static_cast<std::size_t>(mp.secondary)];
          break;
      }
      work_x[static_cast<std::size_t>(j)] = value;
    }
    sol.x = work_x;
  }

  // ---- branch-and-bound ---------------------------------------------------

  /// Applies node `idx`'s bound chain onto cur_lo/cur_hi (integer variables
  /// only — continuous bounds never change during the search). Returns
  /// false when some interval is empty (the node is pruned).
  bool apply_node_bounds(int idx) {
    for (const int j : int_vars) {
      cur_lo[static_cast<std::size_t>(j)] = root_lo[static_cast<std::size_t>(j)];
      cur_hi[static_cast<std::size_t>(j)] = root_hi[static_cast<std::size_t>(j)];
    }
    for (int i = idx; i >= 0; i = pool[static_cast<std::size_t>(i)].parent) {
      const NodeSlot& s = pool[static_cast<std::size_t>(i)];
      if (s.var < 0) continue;
      const std::size_t v = static_cast<std::size_t>(s.var);
      cur_lo[v] = std::max(cur_lo[v], s.lo);
      cur_hi[v] = std::min(cur_hi[v], s.hi);
    }
    for (const int j : int_vars) {
      const std::size_t v = static_cast<std::size_t>(j);
      if (cur_lo[v] > cur_hi[v] + 1e-9) return false;
      cur_hi[v] = std::max(cur_lo[v], cur_hi[v]);
    }
    return true;
  }

  int pick_branch_variable(const Problem& problem, std::span<const double> x,
                           double tol) const {
    int best = -1;
    double best_frac_dist = tol;
    for (int j = 0; j < problem.num_variables(); ++j) {
      if (!problem.variable(j).is_integer) continue;
      const double value = x[static_cast<std::size_t>(j)];
      const double frac = value - std::floor(value);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_frac_dist) {
        best_frac_dist = dist;
        best = j;
      }
    }
    return best;
  }

  /// Grows the node pool (between node expansions, never inside the
  /// simplex loops). Returns false when a configured byte cap forbids it.
  bool ensure_pool_capacity(std::size_t needed) {
    if (needed <= pool.capacity()) return true;
    std::size_t next = std::max<std::size_t>(1024, pool.capacity() * 2);
    while (next < needed) next *= 2;
    if (config.max_arena_bytes != 0 &&
        tableau_bytes(m, stride) + next * sizeof(NodeSlot) >
            config.max_arena_bytes)
      return false;
    pool.reserve(next);
    dfs.reserve(next);
    return true;
  }

  Solution solve_core(const Problem& problem, const MilpOptions& options) {
    const bool maximize = problem.sense() == Sense::kMaximize;
    const auto to_min = [maximize](double obj) { return maximize ? -obj : obj; };
    iterations_this_solve = 0;

    Solution best;
    best.status = SolveStatus::kInfeasible;
    double incumbent = kInfinity;
    long nodes = 0;
    bool hit_node_limit = false;
    bool hit_time_limit = false;
    bool exhausted = false;
    double root_bound = kNegInf;
    bool root_known = false;

    const bool deadline_armed = options.time_limit_ms > 0.0;
    // The kTimeLimit deadline is real time by definition; deadline-armed
    // solves are documented non-reproducible.
    // billcap-lint: allow(wall-clock): solver deadline timing, never output
    const auto deadline_start = std::chrono::steady_clock::now();
    const auto past_deadline = [&]() {
      if (!deadline_armed) return false;
      // billcap-lint: allow(wall-clock): same sanctioned deadline site
      const auto now = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(now - deadline_start)
                 .count() >= options.time_limit_ms;
    };

    // ---- root: adopt the previous solve's basis, or build cold ----------
    bool warm_root = false;
    SolveStatus warm_root_status = SolveStatus::kInfeasible;
    Solution seeded;  // incumbent candidate from the previous optimum
    bool have_seeded = false;
    const bool warm_candidate =
        config.warm_across_solves && resident_valid && parked;
    if (warm_candidate && signature_matches(problem)) {
      load_bounds(problem);
      // maps/int_vars pattern matches the resident build by signature.
      build_maps();
      build_std_costs(problem);
      // Cost pass: new objective over the parked (primal-feasible) basis.
      lp_iters = 0;
      load_phase2_costs();
      SolveStatus st =
          primal_iterate(/*phase1=*/false, options.lp, kStablePivot);
      if (st == SolveStatus::kOptimal && has_seed && !int_vars.empty() &&
          seed_values.size() == int_vars.size()) {
        // Incumbent seeding: pin the integers to the previous optimum's
        // pattern and dual re-solve for the best continuous completion.
        // The result (re-verified against the root problem) becomes the
        // starting incumbent once the root LP below confirms optimality.
        bool pattern_fits = true;
        for (std::size_t k = 0; k < int_vars.size() && pattern_fits; ++k) {
          const std::size_t v = static_cast<std::size_t>(int_vars[k]);
          pattern_fits = seed_values[k] >= root_lo[v] - 1e-9 &&
                         seed_values[k] <= root_hi[v] + 1e-9;
        }
        if (pattern_fits) {
          for (std::size_t k = 0; k < int_vars.size(); ++k) {
            const std::size_t v = static_cast<std::size_t>(int_vars[k]);
            cur_lo[v] = seed_values[k];
            cur_hi[v] = seed_values[k];
          }
          if (warm_eval(problem, options.lp) == SolveStatus::kOptimal) {
            seeded.status = SolveStatus::kOptimal;
            recover_x(seeded);
            for (const int j : int_vars)
              seeded.x[static_cast<std::size_t>(j)] =
                  std::round(seeded.x[static_cast<std::size_t>(j)]);
            if (problem.is_feasible(seeded.x, 1e-6)) {
              seeded.objective = problem.objective_value(seeded.x);
              have_seeded = true;
            }
          }
          cur_lo = root_lo;
          cur_hi = root_hi;
        }
      }
      if (st == SolveStatus::kOptimal) {
        // Rhs pass: swap in the new root rhs, repair dual.
        st = warm_eval(problem, options.lp);
        if (st == SolveStatus::kOptimal || st == SolveStatus::kInfeasible) {
          warm_root = true;
          warm_root_status = st;
          ++stat.warm_solves;
        }
      }
      // kUnbounded under the *old* rhs does not settle the status for the
      // new rhs (which may be infeasible): decide cold.
      if (!warm_root) {
        ++stat.warm_fallbacks;
        resident_valid = false;
        parked = false;
      }
    } else if (warm_candidate) {
      // Same solver, different structure: fall back cold by design.
      ++stat.warm_fallbacks;
      resident_valid = false;
      parked = false;
    }
    if (!warm_root) {
      load_bounds(problem);
      resident_valid = false;
      parked = false;
    }
    if (warm_root && warm_root_status == SolveStatus::kOptimal &&
        have_seeded) {
      // The seeded solution is feasible and the root confirmed solvable:
      // start the search holding it, so every node whose relaxation bound
      // cannot beat it is fathomed immediately.
      incumbent = to_min(seeded.objective);
      best = seeded;
    }

    // ---- depth-first search over pooled nodes ---------------------------
    pool.clear();
    dfs.clear();
    if (!ensure_pool_capacity(4)) {
      best.status = SolveStatus::kArenaExhausted;
      return best;
    }
    pool.push_back(NodeSlot{});  // root
    dfs.push_back(0);

    bool first_node = true;
    while (!dfs.empty()) {
      if (nodes >= options.max_nodes) {
        hit_node_limit = true;
        break;
      }
      if (past_deadline()) {
        hit_time_limit = true;
        break;
      }
      const int idx = dfs.back();
      dfs.pop_back();
      const NodeSlot node = pool[static_cast<std::size_t>(idx)];

      if (node.parent_bound >= incumbent - options.absolute_gap) continue;
      if (!apply_node_bounds(idx)) continue;

      ++nodes;
      ++stat.nodes_explored;

      // ---- node LP -------------------------------------------------------
      SolveStatus st;
      bool solved_warm = false;
      const bool root_already_solved = first_node && warm_root;
      first_node = false;
      if (root_already_solved) {
        st = warm_root_status;
        solved_warm = true;
      } else if (resident_valid && fast_path_ok) {
        st = warm_eval(problem, options.lp);
        if (st == SolveStatus::kOptimal || st == SolveStatus::kInfeasible) {
          solved_warm = true;
          ++stat.node_warm_solves;
        }
      } else {
        st = SolveStatus::kIterationLimit;  // force the cold path below
      }
      if (!solved_warm) {
        st = cold_build(problem, options.lp);
        if (st == SolveStatus::kArenaExhausted) {
          exhausted = true;
          break;
        }
        if (idx == 0)
          ++stat.cold_solves;
        else
          ++stat.node_cold_solves;
      }

      if (st == SolveStatus::kUnbounded) {
        Solution sol;
        sol.status = SolveStatus::kUnbounded;
        sol.nodes = nodes;
        sol.iterations = iterations_this_solve;
        resident_valid = false;
        parked = false;
        return sol;
      }
      if (st != SolveStatus::kOptimal) continue;  // infeasible/limit node

      Solution relax;
      relax.status = SolveStatus::kOptimal;
      recover_x(relax);
      relax.objective = problem.objective_value(relax.x);

      const double bound = to_min(relax.objective);
      if (!root_known) {
        root_bound = bound;
        root_known = true;
      }
      if (bound >= incumbent - options.absolute_gap &&
          bound >= incumbent - options.relative_gap * std::abs(incumbent))
        continue;

      int branch_var =
          pick_branch_variable(problem, relax.x, options.integrality_tol);
      if (branch_var < 0) {
        // Integral: candidate incumbent. A warm-solved node's solution is
        // re-checked against the root problem; numerical drift in the
        // resident tableau falls back to a cold re-solve of this node.
        snap_buf = relax.x;
        for (const int j : int_vars)
          snap_buf[static_cast<std::size_t>(j)] =
              std::round(snap_buf[static_cast<std::size_t>(j)]);
        if (solved_warm && !problem.is_feasible(snap_buf, 1e-6)) {
          st = cold_build(problem, options.lp);
          ++stat.node_cold_solves;
          if (st == SolveStatus::kArenaExhausted) {
            exhausted = true;
            break;
          }
          if (st != SolveStatus::kOptimal) continue;
          recover_x(relax);
          relax.objective = problem.objective_value(relax.x);
          branch_var =
              pick_branch_variable(problem, relax.x, options.integrality_tol);
          if (branch_var >= 0) {
            // The cold re-solve landed on a fractional vertex: branch on it.
          } else {
            snap_buf = relax.x;
            for (const int j : int_vars)
              snap_buf[static_cast<std::size_t>(j)] =
                  std::round(snap_buf[static_cast<std::size_t>(j)]);
          }
        }
        if (branch_var < 0) {
          const double node_bound = to_min(relax.objective);
          if (node_bound < incumbent) {
            incumbent = node_bound;
            best = std::move(relax);
            best.duals.clear();
            best.x = snap_buf;
            best.objective = problem.objective_value(best.x);
          }
          continue;
        }
      }

      // Branch: floor side and ceil side, closer-to-fractional first.
      const double value = relax.x[static_cast<std::size_t>(branch_var)];
      const double floor_value = std::floor(value);
      const double cur_l = cur_lo[static_cast<std::size_t>(branch_var)];
      const double cur_h = cur_hi[static_cast<std::size_t>(branch_var)];

      if (!ensure_pool_capacity(pool.size() + 2)) {
        exhausted = true;
        break;
      }
      NodeSlot down;
      down.var = branch_var;
      down.lo = cur_l;
      down.hi = std::min(cur_h, floor_value);
      down.parent = idx;
      down.parent_bound = bound;
      NodeSlot up;
      up.var = branch_var;
      up.lo = std::max(cur_l, floor_value + 1.0);
      up.hi = cur_h;
      up.parent = idx;
      up.parent_bound = bound;

      const double frac = value - floor_value;
      if (frac <= 0.5) {
        pool.push_back(up);
        dfs.push_back(static_cast<int>(pool.size()) - 1);
        pool.push_back(down);
        dfs.push_back(static_cast<int>(pool.size()) - 1);
      } else {
        pool.push_back(down);
        dfs.push_back(static_cast<int>(pool.size()) - 1);
        pool.push_back(up);
        dfs.push_back(static_cast<int>(pool.size()) - 1);
      }
    }

    best.nodes = nodes;
    best.iterations = iterations_this_solve;
    const bool cut_short = hit_node_limit || hit_time_limit || exhausted;
    if (best.status == SolveStatus::kOptimal) {
      double open_bound = incumbent;
      if (cut_short) {
        for (const int i : dfs)
          open_bound =
              std::min(open_bound, pool[static_cast<std::size_t>(i)].parent_bound);
        open_bound = std::max(open_bound, root_known ? root_bound : kNegInf);
      }
      best.best_bound = maximize ? -open_bound : open_bound;
      if (exhausted) best.status = SolveStatus::kArenaExhausted;
      else if (hit_time_limit) best.status = SolveStatus::kTimeLimit;
      else if (hit_node_limit) best.status = SolveStatus::kNodeLimit;
    } else if (cut_short) {
      best.status = exhausted          ? SolveStatus::kArenaExhausted
                    : hit_time_limit   ? SolveStatus::kTimeLimit
                                       : SolveStatus::kNodeLimit;
    }

    // ---- remember the winning integer pattern for the next seed ---------
    if (config.warm_across_solves &&
        best.status == SolveStatus::kOptimal) {
      seed_values.resize(int_vars.size());
      for (std::size_t k = 0; k < int_vars.size(); ++k)
        seed_values[k] = best.x[static_cast<std::size_t>(int_vars[k])];
      has_seed = true;
    }

    // ---- park the tableau at the root optimum for the next solve --------
    if (config.warm_across_solves && resident_valid && fast_path_ok &&
        !exhausted) {
      cur_lo = root_lo;
      cur_hi = root_hi;
      const SolveStatus st = warm_eval(problem, options.lp);
      if (st == SolveStatus::kOptimal) {
        parked = true;
        capture_signature(problem);
      } else {
        resident_valid = false;
        parked = false;
      }
    } else {
      resident_valid = false;
      parked = false;
    }
    return best;
  }

  Solution solve(const Problem& problem, const MilpOptions& options) {
    if (!config.use_presolve) return solve_core(problem, options);

    const PresolveResult pre = presolve(problem);
    if (pre.infeasible) {
      Solution sol;
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    Solution sol = solve_core(pre.reduced, options);
    if (!sol.x.empty()) {
      sol.x = pre.restore(sol.x);
      if (sol.has_incumbent()) sol.objective = problem.objective_value(sol.x);
    } else if (sol.ok() || sol.has_incumbent()) {
      // A fully presolved-away problem solves with an empty reduced x.
      sol.x = pre.restore(std::span<const double>{});
      sol.objective = problem.objective_value(sol.x);
    }
    return sol;
  }
};

ArenaSolver::ArenaSolver(ArenaConfig config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {}

ArenaSolver::~ArenaSolver() = default;
ArenaSolver::ArenaSolver(ArenaSolver&&) noexcept = default;
ArenaSolver& ArenaSolver::operator=(ArenaSolver&&) noexcept = default;

Solution ArenaSolver::solve(const Problem& problem, const MilpOptions& options) {
  // A per-call cap (MilpOptions::max_arena_bytes) tightens the lifetime cap
  // for this solve only; the lifetime value is restored before returning so
  // one squeezed chunk solve cannot shrink the arena for later hours.
  const std::size_t lifetime_cap = config_.max_arena_bytes;
  std::size_t effective = lifetime_cap;
  if (options.max_arena_bytes != 0 &&
      (effective == 0 || options.max_arena_bytes < effective)) {
    effective = options.max_arena_bytes;
  }
  // An arena already holding more than the squeezed cap is exhausted by
  // definition — a warm pool would otherwise sail past the growth checks.
  if (effective != 0 && impl_->footprint() > effective) {
    Solution sol;
    sol.status = SolveStatus::kArenaExhausted;
    return sol;
  }
  impl_->config.max_arena_bytes = effective;
  Solution sol = impl_->solve(problem, options);
  impl_->config.max_arena_bytes = lifetime_cap;
  return sol;
}

void ArenaSolver::invalidate() noexcept {
  impl_->resident_valid = false;
  impl_->parked = false;
  impl_->has_seed = false;
}

const ArenaStats& ArenaSolver::stats() const noexcept { return impl_->stat; }

std::size_t ArenaSolver::arena_bytes() const noexcept {
  return impl_->footprint();
}

}  // namespace billcap::lp
