#pragma once

#include "lp/problem.hpp"

namespace billcap::lp {

/// Tuning knobs for the simplex solver. Defaults are appropriate for the
/// dense, small-to-medium problems this repository generates (tens to a few
/// hundred rows).
struct SimplexOptions {
  long max_iterations = 50'000;   ///< pivot limit before kIterationLimit
  double pivot_tol = 1e-9;        ///< minimum |pivot| accepted
  double feasibility_tol = 1e-7;  ///< phase-1 residual treated as zero
  double optimality_tol = 1e-9;   ///< reduced cost treated as nonnegative
  /// Pivots without objective improvement before switching to Bland's rule
  /// (guaranteed anti-cycling).
  long stall_threshold = 200;
};

/// Solves the LP relaxation of `problem` (integrality marks are ignored)
/// with a dense two-phase tableau simplex.
///
/// On kOptimal the solution carries primal values for every variable and a
/// dual value per original constraint, oriented so that duals[i] is the
/// sensitivity d(objective)/d(rhs_i) in the problem's own sense. For the
/// DC-OPF substrate these duals ARE the locational marginal prices.
Solution solve_lp(const Problem& problem, const SimplexOptions& options = {});

}  // namespace billcap::lp
