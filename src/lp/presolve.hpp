#pragma once

#include <vector>

#include "lp/problem.hpp"

namespace billcap::lp {

/// Result of a presolve pass.
struct PresolveResult {
  Problem reduced;               ///< the simplified problem
  std::vector<int> kept_vars;    ///< reduced var j came from original kept_vars[j]
  std::vector<double> fixed;     ///< per-original-variable value if fixed, NaN otherwise
  int removed_variables = 0;
  int removed_constraints = 0;
  int tightened_bounds = 0;
  bool infeasible = false;       ///< detected trivially infeasible

  /// Lifts a solution of the reduced problem back to the original space.
  std::vector<double> restore(std::span<const double> reduced_x) const;
};

/// Options for presolve.
struct PresolveOptions {
  bool remove_fixed_variables = true;
  bool remove_empty_constraints = true;
  bool tighten_singleton_rows = true;  ///< a_j x_j <rel> b -> bound update
  double tol = 1e-9;
};

/// A lightweight presolver for the MILPs this repository generates:
///  * singleton rows (one nonzero) become variable bounds;
///  * variables whose bounds coincide are substituted out;
///  * constraints with no remaining variables are checked and dropped;
///  * trivial infeasibility (empty row with violated rhs, crossed bounds)
///    is detected.
/// The returned mapping restores original-space solutions; objective values
/// are preserved exactly (fixed variables' contributions move into the
/// objective constant).
PresolveResult presolve(const Problem& problem,
                        const PresolveOptions& options = {});

}  // namespace billcap::lp
