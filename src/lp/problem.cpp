#include "lp/problem.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace billcap::lp {

int Problem::add_variable(std::string name, double lower, double upper,
                          double objective, bool is_integer) {
  if (lower > upper)
    throw std::invalid_argument("Problem::add_variable: empty bound interval for " + name);
  vars_.push_back(Variable{std::move(name), lower, upper, objective, is_integer});
  return static_cast<int>(vars_.size()) - 1;
}

int Problem::add_binary(std::string name, double objective) {
  return add_variable(std::move(name), 0.0, 1.0, objective, /*is_integer=*/true);
}

int Problem::add_constraint(std::string name, std::vector<Term> terms,
                            Relation relation, double rhs) {
  for (const Term& t : terms) {
    if (t.var < 0 || t.var >= num_variables())
      throw std::out_of_range("Problem::add_constraint: bad variable index in " + name);
  }
  rows_.push_back(Constraint{std::move(name), std::move(terms), relation, rhs});
  return static_cast<int>(rows_.size()) - 1;
}

void Problem::set_objective(int var, double coef) {
  vars_.at(static_cast<std::size_t>(var)).objective = coef;
}

void Problem::add_objective(int var, double delta) {
  vars_.at(static_cast<std::size_t>(var)).objective += delta;
}

void Problem::set_rhs(int row, double rhs) {
  rows_.at(static_cast<std::size_t>(row)).rhs = rhs;
}

void Problem::set_bounds(int var, double lower, double upper) {
  if (lower > upper + 1e-9)
    throw std::invalid_argument("Problem::set_bounds: empty interval");
  auto& v = vars_.at(static_cast<std::size_t>(var));
  v.lower = lower;
  v.upper = std::max(lower, upper);
}

void Problem::set_integer(int var, bool is_integer) {
  vars_.at(static_cast<std::size_t>(var)).is_integer = is_integer;
}

bool Problem::has_integers() const noexcept {
  for (const auto& v : vars_)
    if (v.is_integer) return true;
  return false;
}

double Problem::objective_value(std::span<const double> x) const {
  double obj = objective_constant_;
  for (std::size_t j = 0; j < vars_.size(); ++j) obj += vars_[j].objective * x[j];
  return obj;
}

double Problem::row_activity(int row, std::span<const double> x) const {
  const Constraint& c = rows_.at(static_cast<std::size_t>(row));
  double activity = 0.0;
  for (const Term& t : c.terms)
    activity += t.coef * x[static_cast<std::size_t>(t.var)];
  return activity;
}

bool Problem::is_feasible(std::span<const double> x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    const Variable& v = vars_[j];
    if (x[j] < v.lower - tol || x[j] > v.upper + tol) return false;
    if (v.is_integer && std::abs(x[j] - std::round(x[j])) > tol) return false;
  }
  for (int i = 0; i < num_constraints(); ++i) {
    const double a = row_activity(i, x);
    const Constraint& c = rows_[static_cast<std::size_t>(i)];
    switch (c.relation) {
      case Relation::kLessEqual:
        if (a > c.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (a < c.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(a - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Problem::to_string() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "minimize" : "maximize") << ":";
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    if (vars_[j].objective == 0.0) continue;
    os << ' ' << (vars_[j].objective >= 0 ? "+" : "") << vars_[j].objective
       << ' ' << vars_[j].name;
  }
  if (objective_constant_ != 0.0) os << " + " << objective_constant_;
  os << "\nsubject to:\n";
  for (const auto& c : rows_) {
    os << "  " << c.name << ":";
    for (const Term& t : c.terms) {
      os << ' ' << (t.coef >= 0 ? "+" : "") << t.coef << ' '
         << vars_[static_cast<std::size_t>(t.var)].name;
    }
    switch (c.relation) {
      case Relation::kLessEqual: os << " <= "; break;
      case Relation::kGreaterEqual: os << " >= "; break;
      case Relation::kEqual: os << " = "; break;
    }
    os << c.rhs << '\n';
  }
  os << "bounds:\n";
  for (const auto& v : vars_) {
    os << "  " << v.lower << " <= " << v.name << " <= " << v.upper;
    if (v.is_integer) os << " integer";
    os << '\n';
  }
  return os.str();
}

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kNodeLimit: return "node_limit";
    case SolveStatus::kTimeLimit: return "time_limit";
    case SolveStatus::kArenaExhausted: return "arena_exhausted";
  }
  return "unknown";
}

}  // namespace billcap::lp
