#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace billcap::lp {

/// A piecewise-affine cost of a scalar quantity x >= 0:
///   cost(x) = intercepts[k] + slopes[k] * x   when   breaks[k] <= x <= breaks[k+1]
/// with breaks strictly increasing, breaks.front() == 0 and breaks.back()
/// the (finite) cap on x. Segments may be discontinuous at the breakpoints —
/// exactly the shape of the paper's step electricity prices, where
/// cost(p) = price_k * p and price_k jumps when total load crosses a
/// threshold (Section IV-C, following Trecate et al. [22]).
struct PiecewiseAffine {
  std::vector<double> breaks;      ///< size m+1
  std::vector<double> slopes;      ///< size m
  std::vector<double> intercepts;  ///< size m (zeros for pure step prices)

  /// Number of segments.
  std::size_t num_segments() const noexcept { return slopes.size(); }

  /// Evaluates the cost at x (clamped into [breaks.front(), breaks.back()]).
  /// At an interior breakpoint the *right* segment applies, matching the
  /// "price steps up when load reaches the threshold" semantics.
  double value(double x) const;

  /// Index of the segment containing x under the same convention.
  std::size_t segment_of(double x) const;

  /// Validates shape invariants; throws std::invalid_argument on violation.
  void validate() const;
};

/// Handle to the variables created by add_piecewise_cost.
struct PiecewiseVars {
  int x = -1;                  ///< aggregated quantity, equals sum of amounts
  std::vector<int> selectors;  ///< one binary per segment (sum == 1)
  std::vector<int> amounts;    ///< per-segment amount, 0 unless selected
};

/// Encodes `scale * cost(x)` into `problem` using the standard
/// segment-selection MILP construction:
///   sum_k z_k = 1,  lo_k z_k <= q_k <= hi_k z_k,  x = sum_k q_k,
///   objective += scale * sum_k (intercepts[k] z_k + slopes[k] q_k).
/// Returns the created variables; the caller ties `x` to the rest of the
/// model (e.g. "x equals data-center power draw") with its own constraint.
/// `prefix` namespaces the generated variable/constraint names.
PiecewiseVars add_piecewise_cost(Problem& problem, const PiecewiseAffine& pw,
                                 const std::string& prefix,
                                 double scale = 1.0);

}  // namespace billcap::lp
