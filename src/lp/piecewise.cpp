#include "lp/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace billcap::lp {

void PiecewiseAffine::validate() const {
  if (breaks.size() < 2)
    throw std::invalid_argument("PiecewiseAffine: need at least one segment");
  if (slopes.size() + 1 != breaks.size())
    throw std::invalid_argument("PiecewiseAffine: slopes/breaks size mismatch");
  if (intercepts.size() != slopes.size())
    throw std::invalid_argument(
        "PiecewiseAffine: intercepts/slopes size mismatch");
  if (breaks.front() != 0.0)
    throw std::invalid_argument("PiecewiseAffine: breaks must start at 0");
  for (std::size_t k = 1; k < breaks.size(); ++k) {
    if (!(breaks[k] > breaks[k - 1]))
      throw std::invalid_argument(
          "PiecewiseAffine: breaks must be strictly increasing");
  }
  if (!std::isfinite(breaks.back()))
    throw std::invalid_argument("PiecewiseAffine: final break must be finite");
}

std::size_t PiecewiseAffine::segment_of(double x) const {
  const double clamped = std::clamp(x, breaks.front(), breaks.back());
  // Right-closed convention at the top cap; otherwise segment k covers
  // [breaks[k], breaks[k+1]).
  if (clamped >= breaks.back()) return num_segments() - 1;
  const auto it = std::upper_bound(breaks.begin(), breaks.end(), clamped);
  const auto idx = static_cast<std::size_t>(it - breaks.begin());
  return idx - 1;
}

double PiecewiseAffine::value(double x) const {
  const double clamped = std::clamp(x, breaks.front(), breaks.back());
  const std::size_t k = segment_of(clamped);
  return intercepts[k] + slopes[k] * clamped;
}

PiecewiseVars add_piecewise_cost(Problem& problem, const PiecewiseAffine& pw,
                                 const std::string& prefix, double scale) {
  pw.validate();
  const std::size_t m = pw.num_segments();

  PiecewiseVars vars;
  vars.x = problem.add_variable(prefix + ".x", 0.0, pw.breaks.back());
  vars.selectors.reserve(m);
  vars.amounts.reserve(m);

  std::vector<Term> select_terms;
  std::vector<Term> sum_terms;
  select_terms.reserve(m);
  sum_terms.reserve(m + 1);

  for (std::size_t k = 0; k < m; ++k) {
    const std::string tag = prefix + ".seg" + std::to_string(k);
    const int z = problem.add_binary(tag + ".z", scale * pw.intercepts[k]);
    const int q = problem.add_variable(tag + ".q", 0.0, pw.breaks[k + 1],
                                       scale * pw.slopes[k]);
    vars.selectors.push_back(z);
    vars.amounts.push_back(q);
    select_terms.push_back({z, 1.0});
    sum_terms.push_back({q, 1.0});

    // q_k <= hi_k z_k  and  q_k >= lo_k z_k.
    problem.add_constraint(tag + ".ub", {{q, 1.0}, {z, -pw.breaks[k + 1]}},
                           Relation::kLessEqual, 0.0);
    if (pw.breaks[k] > 0.0) {
      problem.add_constraint(tag + ".lb", {{q, 1.0}, {z, -pw.breaks[k]}},
                             Relation::kGreaterEqual, 0.0);
    }
  }

  problem.add_constraint(prefix + ".one_segment", std::move(select_terms),
                         Relation::kEqual, 1.0);
  sum_terms.push_back({vars.x, -1.0});
  problem.add_constraint(prefix + ".aggregate", std::move(sum_terms),
                         Relation::kEqual, 0.0);
  return vars;
}

}  // namespace billcap::lp
