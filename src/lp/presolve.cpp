#include "lp/presolve.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace billcap::lp {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> PresolveResult::restore(
    std::span<const double> reduced_x) const {
  if (reduced_x.size() != kept_vars.size())
    throw std::invalid_argument("PresolveResult::restore: size mismatch");
  std::vector<double> x(fixed);
  for (std::size_t j = 0; j < kept_vars.size(); ++j)
    x[static_cast<std::size_t>(kept_vars[j])] = reduced_x[j];
  for (double& v : x) {
    if (std::isnan(v))
      throw std::logic_error("PresolveResult::restore: unmapped variable");
  }
  return x;
}

PresolveResult presolve(const Problem& problem, const PresolveOptions& options) {
  const int n = problem.num_variables();
  const int m = problem.num_constraints();

  // Working copies of bounds, updated by singleton rows and fixing.
  std::vector<double> lower(static_cast<std::size_t>(n));
  std::vector<double> upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    lower[static_cast<std::size_t>(j)] = problem.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = problem.variable(j).upper;
  }

  PresolveResult result;
  result.fixed.assign(static_cast<std::size_t>(n), kNan);

  std::vector<bool> drop_row(static_cast<std::size_t>(m), false);

  // Pass 1: singleton rows tighten bounds and are dropped.
  if (options.tighten_singleton_rows) {
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraint(i);
      // Aggregate duplicate terms defensively.
      int var = -1;
      double coef = 0.0;
      bool singleton = true;
      for (const Term& t : c.terms) {
        if (t.coef == 0.0) continue;
        if (var == -1 || var == t.var) {
          var = t.var;
          coef += t.coef;
        } else {
          singleton = false;
          break;
        }
      }
      if (!singleton || var < 0) continue;
      if (coef == 0.0) {
        // 0 <rel> rhs: feasibility check only.
        const bool ok =
            (c.relation == Relation::kLessEqual && 0.0 <= c.rhs + options.tol) ||
            (c.relation == Relation::kGreaterEqual && 0.0 >= c.rhs - options.tol) ||
            (c.relation == Relation::kEqual && std::abs(c.rhs) <= options.tol);
        if (!ok) {
          result.infeasible = true;
          return result;
        }
        drop_row[static_cast<std::size_t>(i)] = true;
        ++result.removed_constraints;
        continue;
      }
      const double bound = c.rhs / coef;
      auto& lo = lower[static_cast<std::size_t>(var)];
      auto& hi = upper[static_cast<std::size_t>(var)];
      const bool upper_bound =
          (c.relation == Relation::kLessEqual) == (coef > 0.0);
      switch (c.relation) {
        case Relation::kEqual:
          if (bound > lo + options.tol) { lo = bound; ++result.tightened_bounds; }
          if (bound < hi - options.tol) { hi = bound; ++result.tightened_bounds; }
          break;
        case Relation::kLessEqual:
        case Relation::kGreaterEqual:
          if (upper_bound) {
            if (bound < hi - options.tol) { hi = bound; ++result.tightened_bounds; }
          } else {
            if (bound > lo + options.tol) { lo = bound; ++result.tightened_bounds; }
          }
          break;
      }
      drop_row[static_cast<std::size_t>(i)] = true;
      ++result.removed_constraints;
    }
  }

  // Crossed bounds => infeasible. Integer variables: round bounds inward.
  for (int j = 0; j < n; ++j) {
    auto& lo = lower[static_cast<std::size_t>(j)];
    auto& hi = upper[static_cast<std::size_t>(j)];
    if (problem.variable(j).is_integer) {
      if (std::isfinite(lo)) lo = std::ceil(lo - options.tol);
      if (std::isfinite(hi)) hi = std::floor(hi + options.tol);
    }
    if (lo > hi + options.tol) {
      result.infeasible = true;
      return result;
    }
    if (lo > hi) hi = lo;  // snap the tiny residual
  }

  // Pass 2: decide which variables survive.
  std::vector<int> new_index(static_cast<std::size_t>(n), -1);
  result.kept_vars.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const bool fixed =
        options.remove_fixed_variables &&
        std::isfinite(lower[static_cast<std::size_t>(j)]) &&
        upper[static_cast<std::size_t>(j)] - lower[static_cast<std::size_t>(j)] <= options.tol;
    if (fixed) {
      result.fixed[static_cast<std::size_t>(j)] = lower[static_cast<std::size_t>(j)];
      ++result.removed_variables;
    } else {
      new_index[static_cast<std::size_t>(j)] =
          static_cast<int>(result.kept_vars.size());
      result.kept_vars.push_back(j);
    }
  }

  // Build the reduced problem.
  result.reduced.set_sense(problem.sense());
  double constant = problem.objective_constant();
  for (int j : result.kept_vars) {
    const Variable& v = problem.variable(j);
    result.reduced.add_variable(v.name, lower[static_cast<std::size_t>(j)],
                                upper[static_cast<std::size_t>(j)], v.objective,
                                v.is_integer);
  }
  for (int j = 0; j < n; ++j) {
    if (!std::isnan(result.fixed[static_cast<std::size_t>(j)]))
      constant += problem.variable(j).objective *
                  result.fixed[static_cast<std::size_t>(j)];
  }
  result.reduced.set_objective_constant(constant);

  for (int i = 0; i < m; ++i) {
    if (drop_row[static_cast<std::size_t>(i)]) continue;
    const Constraint& c = problem.constraint(i);
    std::vector<Term> terms;
    terms.reserve(c.terms.size());
    double rhs = c.rhs;
    for (const Term& t : c.terms) {
      const double fixed_value = result.fixed[static_cast<std::size_t>(t.var)];
      if (!std::isnan(fixed_value)) {
        rhs -= t.coef * fixed_value;
      } else {
        terms.push_back({new_index[static_cast<std::size_t>(t.var)], t.coef});
      }
    }
    if (terms.empty()) {
      const bool ok =
          (c.relation == Relation::kLessEqual && 0.0 <= rhs + options.tol) ||
          (c.relation == Relation::kGreaterEqual && 0.0 >= rhs - options.tol) ||
          (c.relation == Relation::kEqual && std::abs(rhs) <= options.tol);
      if (!ok) {
        result.infeasible = true;
        return result;
      }
      if (options.remove_empty_constraints) {
        ++result.removed_constraints;
        continue;
      }
    }
    result.reduced.add_constraint(c.name, std::move(terms), c.relation, rhs);
  }
  return result;
}

}  // namespace billcap::lp
