#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

namespace billcap::lp {

/// Positive infinity used for unbounded variable bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Optimization direction.
enum class Sense { kMinimize, kMaximize };

/// Row relation.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One nonzero of a constraint row.
struct Term {
  int var = -1;     ///< variable index from Problem::add_variable
  double coef = 0;  ///< coefficient
};

/// A decision variable with simple bounds. Integer variables restrict the
/// branch-and-bound search; the LP relaxation ignores integrality.
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

/// A linear constraint  sum(terms) <relation> rhs.
struct Constraint {
  std::string name;
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A mixed-integer linear program:
///   min/max  c'x + constant
///   s.t.     A x {<=,>=,=} b,   l <= x <= u,   x_j integer for marked j.
///
/// This is the single interchange format between the bill-capping
/// formulations (src/core), the DC-OPF (src/market) and the solvers
/// (simplex / branch-and-bound). Variables and constraints are identified by
/// the dense indices returned from the add_* calls.
class Problem {
 public:
  /// Adds a variable and returns its index.
  int add_variable(std::string name, double lower, double upper,
                   double objective = 0.0, bool is_integer = false);

  /// Adds a {0,1} variable and returns its index.
  int add_binary(std::string name, double objective = 0.0);

  /// Adds a constraint and returns its row index. Terms referencing the same
  /// variable repeatedly are allowed (coefficients are summed by solvers).
  int add_constraint(std::string name, std::vector<Term> terms,
                     Relation relation, double rhs);

  /// Replaces the objective coefficient of a variable.
  void set_objective(int var, double coef);

  /// Replaces a constraint's right-hand side. Rhs-only edits preserve the
  /// row structure ArenaSolver keys its warm starts on.
  void set_rhs(int row, double rhs);

  /// Adds `delta` to the objective coefficient of a variable (handy when a
  /// variable appears in several cost terms during model building).
  void add_objective(int var, double delta);

  /// Sets a constant added to the objective value (default 0).
  void set_objective_constant(double c) noexcept { objective_constant_ = c; }
  double objective_constant() const noexcept { return objective_constant_; }

  void set_sense(Sense sense) noexcept { sense_ = sense; }
  Sense sense() const noexcept { return sense_; }

  /// Tightens variable bounds (used by branch-and-bound). Throws if the
  /// resulting interval is empty beyond tolerance.
  void set_bounds(int var, double lower, double upper);

  /// Marks or unmarks a variable as integer (used by the LP-format parser).
  void set_integer(int var, bool is_integer);

  int num_variables() const noexcept { return static_cast<int>(vars_.size()); }
  int num_constraints() const noexcept {
    return static_cast<int>(rows_.size());
  }
  const Variable& variable(int j) const { return vars_.at(static_cast<std::size_t>(j)); }
  const Constraint& constraint(int i) const { return rows_.at(static_cast<std::size_t>(i)); }
  const std::vector<Variable>& variables() const noexcept { return vars_; }
  const std::vector<Constraint>& constraints() const noexcept { return rows_; }

  /// True if any variable is marked integer.
  bool has_integers() const noexcept;

  /// Objective value (including the constant) of a full assignment.
  double objective_value(std::span<const double> x) const;

  /// Row activity sum(terms) for a full assignment.
  double row_activity(int row, std::span<const double> x) const;

  /// True if `x` satisfies all rows, bounds and integrality within `tol`.
  bool is_feasible(std::span<const double> x, double tol = 1e-6) const;

  /// Human-readable dump (LP-format-like) for debugging and golden tests.
  std::string to_string() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> rows_;
  Sense sense_ = Sense::kMinimize;
  double objective_constant_ = 0.0;
};

/// Termination status of a solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNodeLimit,
  kTimeLimit,
  /// An ArenaSolver with a configured byte cap (ArenaConfig::max_arena_bytes)
  /// refused to grow its arena. A typed, recoverable condition — callers
  /// treat it like an iteration limit (degrade), never as a feasible answer;
  /// Solution::has_incumbent() is false for it.
  kArenaExhausted,
};

/// Printable status name.
const char* to_string(SolveStatus status) noexcept;

/// Result of an LP or MILP solve.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;        ///< includes the problem's constant
  std::vector<double> x;         ///< primal values, one per variable
  std::vector<double> duals;     ///< LP only: d(objective)/d(rhs_i) per row
  long iterations = 0;           ///< simplex pivots (accumulated for MILP)
  long nodes = 0;                ///< branch-and-bound nodes explored
  double best_bound = 0.0;       ///< MILP: proven bound on the optimum

  bool ok() const noexcept { return status == SolveStatus::kOptimal; }

  /// True when `x` holds a feasible assignment: proven optimal, or the best
  /// incumbent found before a node/time limit cut the search short.
  /// Degraded-mode callers may act on such a solution without optimality.
  bool has_incumbent() const noexcept {
    return !x.empty() &&
           (status == SolveStatus::kOptimal ||
            status == SolveStatus::kNodeLimit ||
            status == SolveStatus::kTimeLimit);
  }
};

}  // namespace billcap::lp
