#include "lp/milp.hpp"

#include <algorithm>

#include "lp/arena_solver.hpp"
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

namespace billcap::lp {

namespace {

/// A subproblem is the root problem plus tightened bounds on the integer
/// variables touched so far. Bounds are stored sparsely to keep nodes small.
struct Node {
  std::vector<std::pair<int, std::pair<double, double>>> bounds;
  double parent_bound;  ///< relaxation objective of the parent (min-sense)
};

/// Most fractional integer variable, or -1 if integral.
int pick_branch_variable(const Problem& problem, std::span<const double> x,
                         double tol) {
  int best = -1;
  double best_frac_dist = tol;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (!problem.variable(j).is_integer) continue;
    const double value = x[static_cast<std::size_t>(j)];
    const double frac = value - std::floor(value);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

Solution solve_milp(const Problem& problem, const MilpOptions& options) {
  // A fresh solver per call: within-call warm starts (B&B children resume
  // from the parent basis) apply, cross-call state does not, keeping this
  // free function a pure function of its arguments. Long-lived callers that
  // want hour-over-hour warm starts hold their own ArenaSolver.
  ArenaSolver solver;
  return solver.solve(problem, options);
}

Solution solve_milp_reference(const Problem& problem,
                              const MilpOptions& options) {
  const bool maximize = problem.sense() == Sense::kMaximize;
  // Internally compare in min-sense: lower is better.
  const auto to_min = [maximize](double obj) { return maximize ? -obj : obj; };

  Solution best;
  best.status = SolveStatus::kInfeasible;
  double incumbent = kInfinity;  // min-sense objective of the best solution
  long total_iterations = 0;
  long nodes = 0;
  bool hit_node_limit = false;
  bool hit_time_limit = false;
  double root_bound = -kInfinity;
  bool root_known = false;

  const bool deadline_armed = options.time_limit_ms > 0.0;
  // The kTimeLimit deadline is real time by definition; deadline-armed
  // solves are documented non-reproducible.
  // billcap-lint: allow(wall-clock): solver deadline timing, never output
  const auto deadline_start = std::chrono::steady_clock::now();
  const auto past_deadline = [&]() {
    if (!deadline_armed) return false;
    // billcap-lint: allow(wall-clock): same sanctioned deadline site
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - deadline_start)
               .count() >= options.time_limit_ms;
  };

  // Depth-first stack; children of the most recently expanded node first.
  std::vector<Node> stack;
  stack.reserve(64);
  stack.push_back(Node{{}, -kInfinity});

  Problem scratch = problem;
  while (!stack.empty()) {
    if (nodes >= options.max_nodes) {
      hit_node_limit = true;
      break;
    }
    if (past_deadline()) {
      hit_time_limit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    // Bound pruning against the incumbent before paying for an LP solve.
    if (node.parent_bound >= incumbent - options.absolute_gap) continue;

    // Apply this node's bounds on top of the root problem.
    scratch = problem;
    bool empty_interval = false;
    for (const auto& [var, lu] : node.bounds) {
      const auto& [lo, hi] = lu;
      if (lo > hi + 1e-9) {
        empty_interval = true;
        break;
      }
      scratch.set_bounds(var, lo, std::max(lo, hi));
    }
    if (empty_interval) continue;

    ++nodes;
    Solution relax = solve_lp(scratch, options.lp);
    total_iterations += relax.iterations;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded
      // (or infeasible, which we cannot distinguish cheaply; report
      // unbounded as LP theory suggests for rational data).
      Solution sol;
      sol.status = SolveStatus::kUnbounded;
      sol.nodes = nodes;
      sol.iterations = total_iterations;
      return sol;
    }
    if (relax.status != SolveStatus::kOptimal) continue;  // infeasible node

    const double bound = to_min(relax.objective);
    if (!root_known) {
      root_bound = bound;
      root_known = true;
    }
    if (bound >= incumbent - options.absolute_gap &&
        bound >= incumbent - options.relative_gap * std::abs(incumbent)) {
      continue;  // cannot improve
    }

    const int branch_var =
        pick_branch_variable(problem, relax.x, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      if (bound < incumbent) {
        incumbent = bound;
        best = std::move(relax);
        best.duals.clear();  // duals are not meaningful for the MILP
        // Snap integers exactly.
        for (int j = 0; j < problem.num_variables(); ++j) {
          if (problem.variable(j).is_integer)
            best.x[static_cast<std::size_t>(j)] =
                std::round(best.x[static_cast<std::size_t>(j)]);
        }
        best.objective = problem.objective_value(best.x);
      }
      continue;
    }

    // Branch: floor side and ceil side.
    const double value = relax.x[static_cast<std::size_t>(branch_var)];
    const double floor_value = std::floor(value);
    const Variable& v = problem.variable(branch_var);

    // Current effective bounds for branch_var at this node.
    double cur_lo = v.lower;
    double cur_hi = v.upper;
    for (const auto& [var, lu] : node.bounds) {
      if (var == branch_var) {
        cur_lo = lu.first;
        cur_hi = lu.second;
      }
    }

    auto make_child = [&](double lo, double hi) {
      Node child;
      child.bounds = node.bounds;
      child.parent_bound = bound;
      bool replaced = false;
      for (auto& [var, lu] : child.bounds) {
        if (var == branch_var) {
          lu = {lo, hi};
          replaced = true;
        }
      }
      if (!replaced) child.bounds.push_back({branch_var, {lo, hi}});
      return child;
    };

    Node down = make_child(cur_lo, std::min(cur_hi, floor_value));
    Node up = make_child(std::max(cur_lo, floor_value + 1.0), cur_hi);
    // Explore the side closer to the fractional value first (pushed last).
    const double frac = value - floor_value;
    if (frac <= 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  best.nodes = nodes;
  best.iterations = total_iterations;
  const bool cut_short = hit_node_limit || hit_time_limit;
  if (best.status == SolveStatus::kOptimal) {
    // Best proven bound: the weakest of what remains on the stack, or the
    // incumbent itself when the search completed.
    double open_bound = incumbent;
    if (cut_short) {
      for (const Node& nd : stack)
        open_bound = std::min(open_bound, nd.parent_bound);
      open_bound = std::max(open_bound, root_known ? root_bound : -kInfinity);
    }
    best.best_bound = maximize ? -open_bound : open_bound;
    if (hit_time_limit) best.status = SolveStatus::kTimeLimit;
    else if (hit_node_limit) best.status = SolveStatus::kNodeLimit;
  } else if (cut_short) {
    best.status = hit_time_limit ? SolveStatus::kTimeLimit
                                 : SolveStatus::kNodeLimit;
  }
  return best;
}

}  // namespace billcap::lp
