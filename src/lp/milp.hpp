#pragma once

#include <cstddef>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace billcap::lp {

/// Tuning knobs for branch-and-bound. Defaults comfortably cover the paper's
/// problems (3 data centers x 5 price levels => ~20 binaries).
struct MilpOptions {
  long max_nodes = 200'000;        ///< node limit before kNodeLimit
  double integrality_tol = 1e-6;   ///< |x - round(x)| treated as integral
  double relative_gap = 1e-9;      ///< stop when bound and incumbent close
  double absolute_gap = 1e-9;
  /// Wall-clock deadline for the whole branch-and-bound search in
  /// milliseconds; <= 0 disables the deadline. On expiry the best incumbent
  /// found so far is returned with SolveStatus::kTimeLimit (an hourly
  /// control loop must never block on one stubborn solve).
  double time_limit_ms = 0.0;
  /// Per-solve arena byte cap; 0 leaves the solver's lifetime cap
  /// (ArenaConfig::max_arena_bytes) in charge. A nonzero value tightens the
  /// cap for this call only — the fleet layer uses it to squeeze one chunk's
  /// solve without reconfiguring the warm arena it shares across hours.
  /// Exhaustion surfaces as SolveStatus::kArenaExhausted, never a throw.
  std::size_t max_arena_bytes = 0;
  SimplexOptions lp;               ///< options for each relaxation solve
};

/// Solves a mixed-integer linear program by LP-based branch-and-bound:
/// depth-first on a best-bound-ordered stack, branching on the most
/// fractional integer variable, pruning nodes whose relaxation bound cannot
/// beat the incumbent.
///
/// This plays the role lp_solve plays in the paper (Section IV-C). On
/// kOptimal the solution is integral within `integrality_tol` (values are
/// snapped to exact integers), `best_bound` proves optimality within the
/// gap, and `nodes`/`iterations` report search effort. Duals are not
/// populated for MILPs.
///
/// Since the arena-solver rewrite this entry point runs lp::ArenaSolver
/// (one solve-local instance: B&B children warm start from the parent
/// basis via dual simplex; no state survives the call, so results stay a
/// pure function of the inputs). The original stack-of-Problem-copies
/// engine remains available as solve_milp_reference and is held equal to
/// the arena path by tests/lp/solver_differential_test.cpp.
Solution solve_milp(const Problem& problem, const MilpOptions& options = {});

/// The pre-arena branch-and-bound engine (a fresh two-phase simplex per
/// node). Kept as the independent oracle for the differential test harness
/// and as a fallback reference for debugging; production callers use
/// solve_milp.
Solution solve_milp_reference(const Problem& problem,
                              const MilpOptions& options = {});

}  // namespace billcap::lp
