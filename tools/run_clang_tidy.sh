#!/bin/sh
# clang-tidy stage of the static-analysis gate: runs the curated
# .clang-tidy check set over every first-party translation unit in
# compile_commands.json. Gated on availability — the container toolchain
# may ship gcc only, and the gate must not invent a dependency — so a
# missing clang-tidy skips with a notice instead of failing.
#
# Usage: tools/run_clang_tidy.sh <build-dir>
set -eu

BUILD="${1:?usage: run_clang_tidy.sh <build-dir>}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "clang-tidy: not installed; stage skipped (billcap-lint still gates)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "clang-tidy: $BUILD/compile_commands.json missing — configure with" \
       "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level CMakeLists does)" >&2
  exit 1
fi

# First-party sources only: src/ and tools/ (tests and benches are gated
# by their own suites; fixtures are intentionally bad code).
FILES="$(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)"
STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD" --quiet "$f" || STATUS=1
done
if [ "$STATUS" -ne 0 ]; then
  echo "clang-tidy: findings above must be fixed or NOLINT'ed with a reason"
  exit 1
fi
echo "clang-tidy: clean ($(echo "$FILES" | wc -l) files)"
