#!/bin/sh
# Local CI gate: static analysis first (billcap-audit + clang-tidy — the
# cheapest stage fails fastest), then the tier-1 suite, then the
# robustness suite again under AddressSanitizer + UBSan (fault paths,
# crash/resume and the journal I/O are exactly the code most likely to
# hide lifetime or conversion bugs that only a sanitizer sees), then the
# race-labeled concurrency suites under ThreadSanitizer.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== stage 0: static analysis (billcap-audit + clang-tidy) =="
cmake -B "$ROOT/$PREFIX" -S "$ROOT" >/dev/null
cmake --build "$ROOT/$PREFIX" -j "$JOBS" --target billcap-audit
# --summary prints the per-rule table; a nonzero exit means unsuppressed
# findings, and the gate stops before any test tier runs. Paths are
# relative (run from the repo root) so the archived JSON and any baseline
# keys stay machine-independent.
(cd "$ROOT" && "$ROOT/$PREFIX/tools/lint/billcap-audit" --summary \
  --json "$ROOT/$PREFIX/audit.json" src tools bench examples)
sh "$ROOT/tools/run_clang_tidy.sh" "$ROOT/$PREFIX"

echo "== tier 1: full suite, default toolchain =="
cmake --build "$ROOT/$PREFIX" -j "$JOBS"
ctest --test-dir "$ROOT/$PREFIX" --output-on-failure -j "$JOBS"

echo "== bench: solver engine comparison (BENCH_solver.json) =="
# The custom main in tab_solver_time runs the month-long cold/warm engine
# differential (verifying equal objectives) and writes BENCH_solver.json;
# the empty filter skips the google-benchmark micro benches. The JSON is
# archived at the repo root so DESIGN.md/README numbers stay auditable.
cmake --build "$ROOT/$PREFIX" -j "$JOBS" --target tab_solver_time
(cd "$ROOT/$PREFIX/bench" && ./tab_solver_time --benchmark_filter='^$')
cp "$ROOT/$PREFIX/bench/BENCH_solver.json" "$ROOT/BENCH_solver.json"

echo "== bench: fleet scale-out sweep (BENCH_fleet.json) =="
# A bounded slice of the fleet sweep: 24 scenario-months over the
# 100-site / 20-region fleet, serial vs threaded, under the rotating
# fault ladder. Exits nonzero on any fleet-hour abort or serial/threaded
# digest mismatch, so the determinism contract is gated here, not just in
# ctest. The full 1000-month sweep is a manual run (`./fleet_sweep`); the
# JSON records shape + host_cores so archived numbers stay comparable.
cmake --build "$ROOT/$PREFIX" -j "$JOBS" --target fleet_sweep
(cd "$ROOT/$PREFIX/bench" && ./fleet_sweep --months 24)
cp "$ROOT/$PREFIX/bench/BENCH_fleet.json" "$ROOT/BENCH_fleet.json"

echo "== bench: closed-loop market coupler envelope (BENCH_market.json) =="
# The coupler safety contract on the corner configurations: the
# destabilizing gain must oscillate, open the divergence breaker and
# still keep premium QoS; the damped paper gain must converge closed-loop
# on every hour of the month, bitwise deterministically. Exits nonzero on
# any broken gate. The full gain x damping grid is a manual run
# (`./market_loop`).
cmake --build "$ROOT/$PREFIX" -j "$JOBS" --target market_loop
(cd "$ROOT/$PREFIX/bench" && ./market_loop --smoke)
cp "$ROOT/$PREFIX/bench/BENCH_market.json" "$ROOT/BENCH_market.json"

echo "== tier 2: robustness label under address,undefined sanitizers =="
# Includes solver_test (the arena-vs-legacy differential harness and the
# basis/arena property tests), which carries the robustness label so every
# warm-start code path runs under ASan + UBSan here.
cmake -B "$ROOT/$PREFIX-asan" -S "$ROOT" \
  -DBILLCAP_SANITIZE=address,undefined >/dev/null
cmake --build "$ROOT/$PREFIX-asan" -j "$JOBS"
ctest --test-dir "$ROOT/$PREFIX-asan" -L robustness --output-on-failure \
  -j "$JOBS"

echo "== tier 2b: race label under ThreadSanitizer =="
# The genuinely concurrent suites (thread pool, fleet shard-invariance,
# serve daemon) in a third build tree under TSan. ASan and TSan cannot
# share a build; only the race-labeled targets are built so the stage
# stays cheap. tools/tsan.supp must stay free of project frames — see the
# header comment there.
cmake -B "$ROOT/$PREFIX-tsan" -S "$ROOT" \
  -DBILLCAP_SANITIZE=thread >/dev/null
cmake --build "$ROOT/$PREFIX-tsan" -j "$JOBS" \
  --target thread_pool_test fleet_test serve_test
TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp" \
  ctest --test-dir "$ROOT/$PREFIX-tsan" -L race --output-on-failure \
  -j "$JOBS"

echo "== tier 3: serve-daemon chaos soak (<= 30 s) =="
# The soak drives the serving daemon through a compound chaos scenario
# (flash crowd + feed burst + feed outage + site outage + kill-storm) and
# asserts the overload contract end to end. It reuses the tier-1 build.
ctest --test-dir "$ROOT/$PREFIX" -L soak --output-on-failure -j "$JOBS"

echo "ci: all suites passed"
