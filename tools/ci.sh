#!/bin/sh
# Local CI gate: the tier-1 suite first, then the robustness suite again
# under AddressSanitizer + UBSan (fault paths, crash/resume and the
# journal I/O are exactly the code most likely to hide lifetime or
# conversion bugs that only a sanitizer sees).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier 1: full suite, default toolchain =="
cmake -B "$ROOT/$PREFIX" -S "$ROOT" >/dev/null
cmake --build "$ROOT/$PREFIX" -j "$JOBS"
ctest --test-dir "$ROOT/$PREFIX" --output-on-failure -j "$JOBS"

echo "== tier 2: robustness label under address,undefined sanitizers =="
cmake -B "$ROOT/$PREFIX-asan" -S "$ROOT" \
  -DBILLCAP_SANITIZE=address,undefined >/dev/null
cmake --build "$ROOT/$PREFIX-asan" -j "$JOBS"
ctest --test-dir "$ROOT/$PREFIX-asan" -L robustness --output-on-failure \
  -j "$JOBS"

echo "ci: all suites passed"
