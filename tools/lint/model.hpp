#pragma once

// billcap-audit pass 2, part 1: the repo model. Where pass 1 (lint.hpp)
// sees one translation unit at a time, the model sees the project: every
// file lexed once, its DESIGN-layer derived from its path, its include
// edges extracted, and the two protocol registries parsed —
// src/core/checkpoint_keys.hpp (journal keys) and src/core/exit_codes.hpp
// (process exit codes). The cross-file rules in audit.hpp run over this.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"
#include "tokens.hpp"

namespace billcap::lint {

/// One source file, lexed once and annotated with everything the
/// cross-file rules need.
struct FileModel {
  std::string path;     ///< as given (reporting + baseline keys)
  std::string layer;    ///< src layer ("util", "core", …) or "" when the
                        ///< file is unconstrained (tools/bench/examples/
                        ///< tests sit above the src DAG)
  bool test_file = false;  ///< basename matches the *_test.* convention
  SourceFile source;
  Suppressions suppress;
};

/// One `kName = "value"` declaration in the checkpoint-key registry.
struct KeyDecl {
  std::string name;
  std::string value;
  std::size_t line = 0;  ///< 0-based
};

/// One `kName = value` enumerator in the exit-code registry.
struct ExitDecl {
  std::string name;
  int value = 0;
  std::size_t line = 0;  ///< 0-based
};

struct RepoModel {
  std::vector<FileModel> files;

  /// Index into `files` of the registry translation units, or -1 when the
  /// scanned roots do not contain them (registry rules then self-skip —
  /// fixture trees without a registry behave like pre-registry code).
  std::ptrdiff_t keys_file = -1;
  std::vector<KeyDecl> journal_keys;
  std::ptrdiff_t exits_file = -1;
  std::vector<ExitDecl> exit_codes;
};

/// The DESIGN-layer of a file, derived from the path component following
/// the *last* "src" component ("" when the file is not under a src layer).
std::string layer_of_path(std::string_view path);

/// The DESIGN-layer an include directive points at: the first component of
/// the include path when it names a src layer, else "".
std::string layer_of_include(std::string_view include_path);

/// Layers `from` may include, besides itself. Returns nullptr for an
/// unknown/unconstrained layer (allowed to include anything).
const std::vector<std::string>* allowed_dependencies(std::string_view from);

/// All src layer names, bottom-up.
const std::vector<std::string>& src_layers();

/// Lexes every file and parses the registries. Paths that fail to load
/// throw std::runtime_error (same contract as scan_file).
RepoModel build_model(const std::vector<std::string>& files);

}  // namespace billcap::lint
