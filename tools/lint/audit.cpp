#include "audit.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>

namespace billcap::lint {

namespace {

template <typename Range>
bool contains(const Range& range, std::string_view token) {
  return std::find(std::begin(range), std::end(range), token) !=
         std::end(range);
}

// ---- BL040 layering --------------------------------------------------------

struct LayerEdge {
  std::size_t file_index = 0;
  std::size_t line = 0;  ///< 0-based include line
  std::string from;
  std::string to;
};

/// Every cross-layer include edge in the model, suppressed or not.
std::vector<LayerEdge> collect_layer_edges(const RepoModel& model) {
  std::vector<LayerEdge> edges;
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const FileModel& fm = model.files[i];
    if (fm.layer.empty()) continue;  // tools/tests/bench sit above the DAG
    for (const Include& inc : fm.source.includes) {
      if (inc.angled) continue;
      const std::string to = layer_of_include(inc.path);
      if (to.empty() || to == fm.layer) continue;
      edges.push_back({i, inc.line, fm.layer, to});
    }
  }
  return edges;
}

/// Walks the observed layer graph for a cycle; returns it as
/// "a -> b -> a" (empty when the graph is acyclic).
std::string find_cycle(const std::vector<LayerEdge>& edges) {
  std::map<std::string, std::vector<std::string>> graph;
  for (const LayerEdge& e : edges) graph[e.from].push_back(e.to);
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::string cycle;

  // Iterative DFS keyed on deterministic (sorted map) order.
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    for (const std::string& next : graph[node]) {
      if (state[next] == 1) {
        // Found: slice the stack from `next` onwards.
        std::ostringstream out;
        bool in_cycle = false;
        for (const std::string& s : stack) {
          if (s == next) in_cycle = true;
          if (in_cycle) out << s << " -> ";
        }
        out << next;
        cycle = out.str();
        return true;
      }
      if (state[next] == 0 && visit(next)) return true;
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, _] : graph)
    if (state[node] == 0 && visit(node)) break;
  return cycle;
}

void check_layering(const RepoModel& model, std::vector<Finding>& out) {
  const std::vector<LayerEdge> edges = collect_layer_edges(model);
  for (const LayerEdge& e : edges) {
    const FileModel& fm = model.files[e.file_index];
    const std::vector<std::string>* allowed = allowed_dependencies(e.from);
    if (allowed == nullptr || contains(*allowed, e.to)) continue;
    if (fm.suppress.allows(e.line, Rule::kLayering)) continue;
    out.push_back({fm.path, e.line + 1, Rule::kLayering,
                   "include edge " + e.from + " -> " + e.to +
                       " violates the layer DAG (" + e.from +
                       " may depend on: " +
                       (allowed->empty() ? std::string("nothing")
                                         : [&] {
                                             std::string s;
                                             for (const std::string& d :
                                                  *allowed)
                                               s += (s.empty() ? "" : ", ") +
                                                    d;
                                             return s;
                                           }()) +
                       ") — move the code down a layer or invert the "
                       "dependency, or annotate allow(layering)",
                   e.from + " -> " + e.to});
  }
  const std::string cycle = find_cycle(edges);
  if (!cycle.empty()) {
    // Attribute the cycle to the first edge that participates in it.
    for (const LayerEdge& e : edges) {
      if (cycle.find(e.from + " -> " + e.to) == std::string::npos) continue;
      const FileModel& fm = model.files[e.file_index];
      if (fm.suppress.allows(e.line, Rule::kLayering)) break;
      out.push_back({fm.path, e.line + 1, Rule::kLayering,
                     "include cycle in the layer graph: " + cycle +
                         " — layers must form a DAG",
                     cycle});
      break;
    }
  }
}

// ---- BL041 journal-key registry --------------------------------------------

constexpr std::string_view kSetAccessors[] = {
    "set", "set_u64", "set_size", "set_double_bits", "set_double_list",
};
constexpr std::string_view kGetAccessors[] = {
    "get", "get_u64", "get_size", "get_double_bits", "get_double_list",
};

/// True when tokens[i] is `.accessor(` or `->accessor(`.
bool accessor_call(const std::vector<Token>& t, std::size_t i) {
  if (t[i].kind != TokKind::kIdentifier) return false;
  if (i == 0 || t[i - 1].kind != TokKind::kPunct ||
      (t[i - 1].text != "." && t[i - 1].text != ">"))
    return false;
  return i + 1 < t.size() && t[i + 1].kind == TokKind::kPunct &&
         t[i + 1].text == "(";
}

/// The registry constant passed as the accessor's first argument, when the
/// argument is `keys::kName` / `kName`; "" for literals and expressions.
std::string key_constant_argument(const std::vector<Token>& t,
                                  std::size_t call_ident) {
  std::size_t i = call_ident + 2;  // past '('
  // Skip a `keys ::` / `core :: keys ::` qualifier chain.
  while (i + 1 < t.size() && t[i].kind == TokKind::kIdentifier &&
         t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "::")
    i += 2;
  if (i < t.size() && t[i].kind == TokKind::kIdentifier &&
      t[i].text.size() > 1 && t[i].text[0] == 'k')
    return t[i].text;
  return {};
}

void check_journal_registry(const RepoModel& model,
                            std::vector<Finding>& out) {
  if (model.keys_file < 0) return;  // no registry in the scanned roots
  const FileModel& registry =
      model.files[static_cast<std::size_t>(model.keys_file)];

  // Registry self-consistency: two constants with the same on-disk key
  // silently alias state.
  std::map<std::string, const KeyDecl*> by_value;
  for (const KeyDecl& k : model.journal_keys) {
    auto [it, inserted] = by_value.emplace(k.value, &k);
    if (!inserted && !registry.suppress.allows(k.line, Rule::kJournalRegistry))
      out.push_back({registry.path, k.line + 1, Rule::kJournalRegistry,
                     "duplicate journal key \"" + k.value + "\": " + k.name +
                         " aliases " + it->second->name +
                         " — two constants writing one on-disk key silently "
                         "merge state",
                     {}});
  }

  // Call-site and usage scan.
  std::set<std::string> referenced;          // constant names seen anywhere
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      unguarded_reads;                       // name -> (file, 0-based line)
  std::set<std::string> guarded_names;       // has(kName) seen somewhere
  for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
    const FileModel& fm = model.files[fi];
    if (static_cast<std::ptrdiff_t>(fi) == model.keys_file) continue;
    const std::vector<Token>& t = fm.source.tokens;
    // Accessor calls only count in files that actually touch a Journal —
    // `.get("...")` on an argument parser is not a checkpoint access.
    const bool journal_user = fm.source.includes_path("util/journal.hpp") ||
                              fm.source.has_identifier("Journal");
    std::set<std::string> has_in_file;
    std::vector<std::pair<std::string, std::size_t>> reads_in_file;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdentifier && t[i].text.size() > 1 &&
          t[i].text[0] == 'k')
        referenced.insert(t[i].text);
      if (!journal_user) continue;
      if (!accessor_call(t, i)) continue;
      const bool is_set = contains(kSetAccessors, t[i].text);
      const bool is_get = contains(kGetAccessors, t[i].text);
      const bool is_has = t[i].text == "has";
      if (!is_set && !is_get && !is_has) continue;
      // Literal key at a put/get: must be a registered on-disk key.
      if (i + 2 < t.size() && t[i + 2].kind == TokKind::kString) {
        const std::string& literal = t[i + 2].text;
        if (!by_value.count(literal) &&
            !fm.suppress.allows(t[i].line, Rule::kJournalRegistry))
          out.push_back(
              {fm.path, t[i].line + 1, Rule::kJournalRegistry,
               "journal key \"" + literal +
                   "\" is not declared in src/core/checkpoint_keys.hpp — an "
                   "unregistered key silently drops state on resume; declare "
                   "it or annotate allow(journal-key-registry)",
               {}});
        continue;
      }
      const std::string name = key_constant_argument(t, i);
      if (name.empty()) continue;
      if (is_has) {
        has_in_file.insert(name);
        guarded_names.insert(name);
      } else if (is_get) {
        reads_in_file.emplace_back(name, t[i].line);
      }
    }
    for (const auto& [name, line] : reads_in_file)
      if (!has_in_file.count(name)) unguarded_reads[name].push_back({fi, line});
  }

  // Inconsistent absence tolerance: a key guarded with has() in one reader
  // but read bare in another will desync the moment an old checkpoint
  // lacking the key meets the bare reader.
  for (const auto& [name, sites] : unguarded_reads) {
    if (!guarded_names.count(name)) continue;
    for (const auto& [fi, line] : sites) {
      const FileModel& fm = model.files[fi];
      if (fm.suppress.allows(line, Rule::kJournalRegistry)) continue;
      out.push_back(
          {fm.path, line + 1, Rule::kJournalRegistry,
           "key " + name +
               " is has()-guarded elsewhere but read here without a guard — "
               "a pre-" +
               name +
               " checkpoint would throw in this reader and resume cleanly in "
               "the other; guard the read or annotate "
               "allow(journal-key-registry)",
           {}});
    }
  }

  // Dead registry entries: a declared key no code references is drift —
  // either state stopped being persisted (delete the key) or a writer
  // regressed to a raw literal (the literal check above catches that side).
  for (const KeyDecl& k : model.journal_keys) {
    if (referenced.count(k.name)) continue;
    if (registry.suppress.allows(k.line, Rule::kJournalRegistry)) continue;
    out.push_back({registry.path, k.line + 1, Rule::kJournalRegistry,
                   "registered key " + k.name + " (\"" + k.value +
                       "\") is never referenced by any scanned source — "
                       "delete it or annotate allow(journal-key-registry)",
                   {}});
  }
}

// ---- BL042 exit-code registry ----------------------------------------------

constexpr std::string_view kExitCalls[] = {"exit", "_exit", "quick_exit"};

void check_exit_registry(const RepoModel& model, std::vector<Finding>& out) {
  if (model.exits_file < 0) return;
  const FileModel& registry =
      model.files[static_cast<std::size_t>(model.exits_file)];

  std::map<int, const ExitDecl*> by_value;
  for (const ExitDecl& e : model.exit_codes) {
    auto [it, inserted] = by_value.emplace(e.value, &e);
    if (!inserted && !registry.suppress.allows(e.line, Rule::kExitRegistry))
      out.push_back({registry.path, e.line + 1, Rule::kExitRegistry,
                     "duplicate exit code " + std::to_string(e.value) + ": " +
                         e.name + " aliases " + it->second->name,
                     {}});
  }

  auto flag = [&](const FileModel& fm, std::size_t line0, int value,
                  const std::string& site) {
    if (fm.suppress.allows(line0, Rule::kExitRegistry)) return;
    const auto it = by_value.find(value);
    const std::string hint =
        it != by_value.end()
            ? "use core::ExitCode::" + it->second->name +
                  " (src/core/exit_codes.hpp)"
            : std::to_string(value) +
                  " is not a registered core::ExitCode value — the "
                  "supervisor cannot interpret it; add it to the registry "
                  "or use an existing code";
    out.push_back({fm.path, line0 + 1, Rule::kExitRegistry,
                   "integer-literal exit code at " + site + " — " + hint +
                       ", or annotate allow(exit-code-registry)",
                   {}});
  };

  for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
    const FileModel& fm = model.files[fi];
    if (static_cast<std::ptrdiff_t>(fi) == model.exits_file) continue;
    const std::vector<Token>& t = fm.source.tokens;

    // exit(N) / _exit(N) / quick_exit(N) anywhere.
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdentifier ||
          !contains(kExitCalls, t[i].text))
        continue;
      if (i > 0 && t[i - 1].kind == TokKind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == ">"))
        continue;  // member named exit()
      if (t[i + 1].kind != TokKind::kPunct || t[i + 1].text != "(") continue;
      if (t[i + 2].kind != TokKind::kNumber) continue;
      if (t[i + 3].kind != TokKind::kPunct || t[i + 3].text != ")") continue;
      const int value = std::atoi(t[i + 2].text.c_str());
      flag(fm, t[i].line, value, t[i].text + "(" + t[i + 2].text + ")");
    }

    // return N; inside main's brace block, for N >= 2 (0 and 1 are the
    // universal POSIX success/failure pair; everything richer must come
    // from the registry).
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].text != "int" || t[i + 1].text != "main" ||
          t[i + 2].text != "(")
        continue;
      const std::size_t args_close = match_forward(t, i + 2);
      if (args_close >= t.size()) break;
      const std::size_t body_open = find_punct(t, args_close + 1, "{");
      if (body_open >= t.size()) break;
      std::size_t body_close = match_forward(t, body_open);
      if (body_close >= t.size()) body_close = t.size() - 1;
      for (std::size_t j = body_open; j < body_close; ++j) {
        if (t[j].kind != TokKind::kIdentifier || t[j].text != "return")
          continue;
        if (j + 2 >= t.size() || t[j + 1].kind != TokKind::kNumber) continue;
        if (t[j + 2].kind != TokKind::kPunct || t[j + 2].text != ";") continue;
        const int value = std::atoi(t[j + 1].text.c_str());
        if (value >= 2)
          flag(fm, t[j].line, value,
               "return " + t[j + 1].text + " from main");
      }
      i = body_close;
    }
  }
}

// ---- BL043 unseeded RNG ----------------------------------------------------

constexpr std::string_view kAmbientRngCalls[] = {
    "rand", "srand", "drand48", "lrand48", "mrand48", "srand48",
};
constexpr std::string_view kStdEngines[] = {
    "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b",
};
constexpr std::string_view kAmbientSeedMarkers[] = {
    "random_device", "time", "clock", "now", "rd", "entropy",
};

void check_unseeded_rng(const RepoModel& model, std::vector<Finding>& out) {
  for (const FileModel& fm : model.files) {
    if (fm.test_file) continue;  // *_test.* may use ad-hoc entropy
    const std::vector<Token>& t = fm.source.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdentifier) continue;
      if (fm.suppress.allows(t[i].line, Rule::kUnseededRng)) continue;
      if (t[i].text == "random_device") {
        out.push_back({fm.path, t[i].line + 1, Rule::kUnseededRng,
                       "std::random_device draws ambient entropy — runs "
                       "become unreproducible; seed from config through "
                       "util::Rng or annotate allow(unseeded-rng)",
                       {}});
      } else if (contains(kAmbientRngCalls, t[i].text) && i + 1 < t.size() &&
                 t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(" &&
                 (i == 0 || t[i - 1].kind != TokKind::kPunct ||
                  (t[i - 1].text != "." && t[i - 1].text != ">"))) {
        out.push_back({fm.path, t[i].line + 1, Rule::kUnseededRng,
                       "'" + t[i].text +
                           "' uses the ambient C PRNG — runs become "
                           "unreproducible and the state is process-global; "
                           "use the seeded util::Rng or annotate "
                           "allow(unseeded-rng)",
                       {}});
      } else if (contains(kStdEngines, t[i].text) && i + 1 < t.size() &&
                 t[i + 1].kind == TokKind::kPunct &&
                 (t[i + 1].text == "(" || t[i + 1].text == "{")) {
        const std::size_t close = match_forward(t, i + 1);
        if (close >= t.size()) continue;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (t[j].kind == TokKind::kIdentifier &&
              contains(kAmbientSeedMarkers, t[j].text)) {
            out.push_back(
                {fm.path, t[i].line + 1, Rule::kUnseededRng,
                 "std::" + t[i].text +
                     " seeded from ambient state ('" + t[j].text +
                     "') — the seed must come from config so a rerun "
                     "reproduces the month; use util::Rng or annotate "
                     "allow(unseeded-rng)",
                 {}});
            break;
          }
        }
      }
    }
  }
}

// ---- driver ----------------------------------------------------------------

void dedupe(std::vector<Finding>& findings) {
  // BL042 over BL010, BL043 over BL001: the audit rule carries the
  // registry context, the per-line rule would say the same thing twice.
  std::set<std::pair<std::string, std::size_t>> audit_sites;
  for (const Finding& f : findings)
    if (f.rule == Rule::kExitRegistry || f.rule == Rule::kUnseededRng)
      audit_sites.insert({f.file, f.line});
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return (f.rule == Rule::kExitCode ||
                               f.rule == Rule::kWallClock) &&
                              audit_sites.count({f.file, f.line}) != 0;
                     }),
      findings.end());
}

}  // namespace

AuditResult audit_model(const RepoModel& model) {
  AuditResult result;
  result.files_scanned = model.files.size();
  for (const FileModel& fm : model.files)
    for (Finding& f : scan_tokens(fm.path, fm.source))
      result.findings.push_back(std::move(f));
  check_layering(model, result.findings);
  check_journal_registry(model, result.findings);
  check_exit_registry(model, result.findings);
  check_unseeded_rng(model, result.findings);
  dedupe(result.findings);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return std::string_view(info(a.rule).id) < info(b.rule).id;
            });
  return result;
}

AuditResult audit_paths(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots)
    for (std::string& f : collect_sources(root))
      files.push_back(std::move(f));
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return audit_model(build_model(files));
}

// ---- JSON + baseline -------------------------------------------------------

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string baseline_key(const Finding& finding) {
  return std::string(info(finding.rule).id) + " " + finding.file + ":" +
         std::to_string(finding.line);
}

std::string to_json(const AuditResult& result,
                    const std::set<std::string>& baseline) {
  std::string out = "{\n  \"version\": 1,\n  \"files_scanned\": " +
                    std::to_string(result.files_scanned) +
                    ",\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    const RuleInfo& r = info(f.rule);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": ";
    append_json_string(out, r.id);
    out += ", \"name\": ";
    append_json_string(out, r.name);
    out += ", \"file\": ";
    append_json_string(out, f.file);
    out += ", \"line\": " + std::to_string(f.line);
    if (!f.edge.empty()) {
      out += ", \"edge\": ";
      append_json_string(out, f.edge);
    }
    out += ", \"grandfathered\": ";
    out += baseline.count(baseline_key(f)) ? "true" : "false";
    out += ", \"message\": ";
    append_json_string(out, f.message);
    out += "}";
  }
  out += result.findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"summary\": {";
  const auto counts = summarize(result.findings);
  bool first = true;
  for (const auto& [id, count] : counts) {
    out += first ? "" : ", ";
    first = false;
    append_json_string(out, id);
    out += ": " + std::to_string(count);
  }
  out += "}\n}\n";
  return out;
}

std::string serialize_baseline(const AuditResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.findings.size());
  for (const Finding& f : result.findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# billcap-audit baseline: grandfathered findings (one \"<rule> "
      "<file>:<line>\" per line).\n"
      "# New findings not listed here fail the audit; listed ones warn.\n";
  for (const std::string& k : keys) out += k + "\n";
  return out;
}

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> keys;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (!line.empty() && line.front() != '#')
      keys.insert(std::string(line));
    start = end + 1;
  }
  return keys;
}

}  // namespace billcap::lint
