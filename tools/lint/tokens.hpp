#pragma once

// billcap-audit's lexing layer. One pass over a translation unit's text
// produces everything both analysis passes consume:
//
//  * a token stream over the *code channel* — identifiers, numbers,
//    punctuators and string/char literals with 0-based line/column
//    positions. String and comment *contents* never become code tokens,
//    so a "while(true)" inside a log message cannot trip a loop rule and
//    prose in a comment cannot gate a file into a rule's applicability
//    set (the failure class the old raw-text `find()` gates had).
//  * per-line channel views (code / string contents / comment text) for
//    the line-shaped rules and the suppression scanner.
//  * the file's `#include` directives, which feed the repo include graph
//    (BL040 layering) and the content gates (a file is a journal user
//    because it *includes* util/journal.hpp, not because a comment
//    mentions it).
//
// It is still a lexer, not a parser: no preprocessing, no templates, no
// semantics. Every rule built on it is shaped so the cheap direction is a
// missed finding, never a false positive.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace billcap::lint {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< a numeric literal (integer or floating, lexed loosely)
  kString,      ///< one string literal; `text` holds the *contents*
  kCharLit,     ///< one character literal; `text` holds the contents
  kPunct,       ///< a single punctuator character
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 0-based physical line of the token's start
  std::size_t col = 0;   ///< 0-based column within the *code channel* line
};

/// One physical source line, split into the three channels line-shaped
/// rules care about. String-literal *contents* are moved to `strings`
/// (delimiters stay in `code` so call shapes like `.set("` remain
/// visible); comment text is moved to `comment`.
struct LineInfo {
  std::string code;
  std::string strings;
  std::string comment;
};

/// One `#include` directive.
struct Include {
  std::string path;    ///< the text between the delimiters
  bool angled = false; ///< <...> (system) vs "..." (project)
  std::size_t line = 0;  ///< 0-based
};

/// A fully lexed translation unit.
struct SourceFile {
  std::vector<LineInfo> lines;
  std::vector<Token> tokens;
  std::vector<Include> includes;

  /// True when the code channel contains the exact identifier sequence
  /// `words` (punctuators between them must match too when a word is a
  /// punctuator string like "::" or "("). Used by content gates.
  bool has_code_sequence(std::initializer_list<std::string_view> words) const;

  /// True when any include's path equals `path` exactly.
  bool includes_path(std::string_view path) const;

  /// True when some identifier token equals `ident`.
  bool has_identifier(std::string_view ident) const;
};

/// Lexes `text`. Never fails: malformed input degrades to best-effort
/// tokens, matching the scanner's missed-finding-over-false-positive bias.
SourceFile tokenize(std::string_view text);

/// Index of the first token at or after `tokens[from]` whose kind is
/// kPunct and text is `punct`, or tokens.size() when absent.
std::size_t find_punct(const std::vector<Token>& tokens, std::size_t from,
                       std::string_view punct);

/// Given `tokens[open]` == "(" (or "{"), returns the index of its matching
/// close punctuator, honouring nesting, or tokens.size() when unmatched.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open);

}  // namespace billcap::lint
