#pragma once

// billcap-audit — a fast, dependency-free static-analysis pass for the
// bill-capping controller. It does not parse C++; it lexes each source
// file into a token stream and per-line channels (tokens.hpp) just far
// enough to separate code, string-literal contents and comments, then runs
// a fixed catalogue of determinism / protocol / robustness rules over the
// result. The point is not generality — it is that the invariant behind
// every bitwise-resume test (a resumed month is byte-identical to an
// uninterrupted one) is enforced by a machine, not a review habit.
//
// This header is pass 1: the per-file rules (BL001–BL030). Pass 2 — the
// repo model (include graph, key/exit-code registries) and the cross-file
// rules BL040–BL043 — lives in model.hpp / audit.hpp.
//
// Suppression syntax, checked in-source — for example:
//
//   // billcap-lint: allow(wall-clock): solver deadline timing, never output
//
// on the offending line, or on its own line immediately above. An allow
// without a rationale (or naming an unknown rule) is itself a finding
// (BL030), so every sanctioned hazard carries its justification.

#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tokens.hpp"

namespace billcap::lint {

/// Rule catalogue. IDs are stable; tests and suppressions key on names.
enum class Rule {
  kWallClock,       ///< BL001: wall-clock / ambient PRNG in controller code
  kUnorderedIter,   ///< BL002: unordered container (iteration order leaks)
  kFloatFormat,     ///< BL003: %f/%e/%g without an explicit precision
  kExitCode,        ///< BL010: raw exit-code integer literal
  kJournalKey,      ///< BL011: raw string key at a Journal call site
  kRawWrite,        ///< BL012: ofstream/fopen bypassing the atomic journal
  kCatchAll,        ///< BL020: catch (...) that swallows silently
  kTodoIssue,       ///< BL021: to-do marker without an issue reference
  kUnboundedQueue,  ///< BL022: container growth in a loop with no bound
  kSolveAlloc,      ///< BL023: heap allocation in the lp solver's loops
  kParallelReduce,  ///< BL024: unordered parallel reduction (mutex/atomic acc)
  kFixedPoint,      ///< BL025: convergence while-loop with no visible bound
  kBareAllow,       ///< BL030: allow annotation without a rationale
  kLayering,        ///< BL040: include edge that violates the layer DAG
  kJournalRegistry, ///< BL041: journal key not in checkpoint_keys.hpp
  kExitRegistry,    ///< BL042: exit literal outside the exit-code registry
  kUnseededRng,     ///< BL043: ambient-seeded RNG outside test code
};

constexpr std::size_t kRuleCount = 17;

struct RuleInfo {
  Rule rule;
  const char* id;         ///< "BL001"
  const char* name;       ///< "wall-clock" (suppression key)
  const char* rationale;  ///< one line: why the pattern is banned
};

/// All rules, in report order.
const std::array<RuleInfo, kRuleCount>& rule_table();

/// Info for a rule; never fails (the enum is the index).
const RuleInfo& info(Rule rule);

/// Rule for a suppression name, or nullptr when unknown.
const RuleInfo* find_rule(std::string_view name);

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  Rule rule = Rule::kWallClock;
  std::string message;
  std::string edge;  ///< BL040 only: the offending layer edge, "core -> serve"
};

/// "file:line: [BL001 wall-clock] message" — clickable in editors/CI logs.
std::string format_finding(const Finding& finding);

/// In-source suppressions for one file, collected from its comments.
struct Suppressions {
  /// line (0-based) -> rules allowed on that line.
  std::vector<std::set<Rule>> allowed;
  std::vector<Finding> bare_allow_findings;

  bool allows(std::size_t line0, Rule rule) const {
    return line0 < allowed.size() && allowed[line0].count(rule) != 0;
  }
};

/// Scans the comment channel of a lexed file for allow() annotations.
/// An annotation sanctions its own line and the line directly below it.
Suppressions collect_suppressions(std::string_view path,
                                  const SourceFile& source);

/// Runs the per-file rules over an already-lexed translation unit. `path`
/// is used for reporting and for nothing else — every applicability
/// decision is content-based (includes, token sequences), so fixture files
/// behave exactly like real sources.
std::vector<Finding> scan_tokens(std::string_view path,
                                 const SourceFile& source);

/// Lexes and scans one translation unit's text.
std::vector<Finding> scan_source(std::string_view path, std::string_view text);

/// Loads and scans a file. Throws std::runtime_error when unreadable.
std::vector<Finding> scan_file(const std::string& path);

/// Loads and lexes a file without scanning (the audit pass lexes once and
/// shares the result). Throws std::runtime_error when unreadable.
SourceFile load_source(const std::string& path);

/// True for the extensions billcap-audit understands (.cpp .cc .hpp .h).
bool is_scannable(std::string_view path);

/// Recursively collects scannable files under `root` (or `root` itself when
/// it is a file), sorted so output and summaries are deterministic.
std::vector<std::string> collect_sources(const std::string& root);

/// Per-rule finding counts keyed by rule ID, including zero rows for rules
/// that did not fire (the CI summary table prints every rule).
std::map<std::string, std::size_t> summarize(const std::vector<Finding>& all);

}  // namespace billcap::lint
