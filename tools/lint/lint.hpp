#pragma once

// billcap-lint — a fast, dependency-free static-analysis pass for the
// bill-capping controller. It does not parse C++; it lexes each source
// file just far enough to separate code, string-literal contents and
// comments, then runs a fixed catalogue of determinism / protocol /
// robustness rules over the result. The point is not generality — it is
// that the invariant behind every bitwise-resume test (a resumed month is
// byte-identical to an uninterrupted one) is enforced by a machine, not a
// review habit.
//
// Suppression syntax, checked in-source — for example:
//
//   // billcap-lint: allow(wall-clock): solver deadline timing, never output
//
// on the offending line, or on its own line immediately above. An allow
// without a rationale (or naming an unknown rule) is itself a finding
// (BL030), so every sanctioned hazard carries its justification.

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace billcap::lint {

/// Rule catalogue. IDs are stable; tests and suppressions key on names.
enum class Rule {
  kWallClock,      ///< BL001: wall-clock / ambient PRNG in controller code
  kUnorderedIter,  ///< BL002: unordered container (iteration order leaks)
  kFloatFormat,    ///< BL003: %f/%e/%g without an explicit precision
  kExitCode,       ///< BL010: raw exit-code integer literal
  kJournalKey,     ///< BL011: raw string key at a Journal call site
  kRawWrite,       ///< BL012: ofstream/fopen bypassing the atomic journal
  kCatchAll,       ///< BL020: catch (...) that swallows silently
  kTodoIssue,      ///< BL021: to-do marker without an issue reference
  kUnboundedQueue, ///< BL022: container growth in a loop with no bound
  kSolveAlloc,     ///< BL023: heap allocation in the lp solver's loops
  kParallelReduce, ///< BL024: unordered parallel reduction (mutex/atomic acc)
  kFixedPoint,     ///< BL025: convergence while-loop with no visible bound
  kBareAllow,      ///< BL030: allow annotation without a rationale
};

struct RuleInfo {
  Rule rule;
  const char* id;         ///< "BL001"
  const char* name;       ///< "wall-clock" (suppression key)
  const char* rationale;  ///< one line: why the pattern is banned
};

/// All rules, in report order.
const std::array<RuleInfo, 13>& rule_table();

/// Info for a rule; never fails (the enum is the index).
const RuleInfo& info(Rule rule);

/// Rule for a suppression name, or nullptr when unknown.
const RuleInfo* find_rule(std::string_view name);

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  Rule rule = Rule::kWallClock;
  std::string message;
};

/// "file:line: [BL001 wall-clock] message" — clickable in editors/CI logs.
std::string format_finding(const Finding& finding);

/// Scans one translation unit's text. `path` is used for reporting and for
/// nothing else — every applicability decision is content-based, so
/// fixture files behave exactly like real sources.
std::vector<Finding> scan_source(std::string_view path, std::string_view text);

/// Loads and scans a file. Throws std::runtime_error when unreadable.
std::vector<Finding> scan_file(const std::string& path);

/// True for the extensions billcap-lint understands (.cpp .cc .hpp .h).
bool is_scannable(std::string_view path);

/// Recursively collects scannable files under `root` (or `root` itself when
/// it is a file), sorted so output and summaries are deterministic.
std::vector<std::string> collect_sources(const std::string& root);

/// Per-rule finding counts keyed by rule ID, including zero rows for rules
/// that did not fire (the CI summary table prints every rule).
std::map<std::string, std::size_t> summarize(const std::vector<Finding>& all);

}  // namespace billcap::lint
