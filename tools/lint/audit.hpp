#pragma once

// billcap-audit pass 2, part 2: the cross-file rules. Pass 1 polices one
// translation unit; these rules police the *project* — the layering DAG,
// the journal-key registry, the exit-code registry and ambient RNG
// seeding — because the invariants they protect only fail across files
// (a key written in serve/ but never declared in core/, an include that
// quietly inverts a layer edge).
//
//   BL040 layering            include edge violating the DESIGN layer DAG,
//                             plus include-cycle detection
//   BL041 journal-key-registry  journal keys not declared in
//                             checkpoint_keys.hpp; duplicate / dead keys;
//                             inconsistently guarded reads
//   BL042 exit-code-registry  integer-literal exits outside exit_codes.hpp
//   BL043 unseeded-rng        ambient-seeded RNG outside *_test.* files
//
// audit_model() also runs every pass-1 rule over each file and dedupes the
// overlap (BL042 over BL010, BL043 over BL001 at the same site), so one
// invocation is the whole gate.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace billcap::lint {

struct AuditResult {
  std::vector<Finding> findings;  ///< deduped, sorted by (file, line, id)
  std::size_t files_scanned = 0;
};

/// Runs pass 1 + pass 2 over an already-built model.
AuditResult audit_model(const RepoModel& model);

/// Collects sources under the roots, builds the model, audits it.
AuditResult audit_paths(const std::vector<std::string>& roots);

/// Machine-readable report: {"version", "files_scanned", "summary",
/// "findings": [{"rule","name","file","line","edge","message",
/// "grandfathered"}]}. `grandfathered` marks findings present in
/// `baseline` (empty baseline: every finding is new).
std::string to_json(const AuditResult& result,
                    const std::set<std::string>& baseline);

/// The ratchet identity of a finding: "<id> <file>:<line>". Line-stable
/// enough for a short-lived grandfather list; the ratchet direction is
/// that any drift re-surfaces as a new finding.
std::string baseline_key(const Finding& finding);

/// One baseline_key per line, sorted. '#' lines and blanks are ignored on
/// load.
std::string serialize_baseline(const AuditResult& result);
std::set<std::string> parse_baseline(std::string_view text);

}  // namespace billcap::lint
