#include "model.hpp"

#include <algorithm>
#include <map>

namespace billcap::lint {

namespace {

/// The DESIGN layer DAG (DESIGN.md §9): each layer lists every layer it
/// may depend on. The lists are the transitive closure, spelled out so a
/// reviewer can diff an architecture decision in one place.
struct LayerRule {
  const char* name;
  std::vector<std::string> deps;
};

const std::vector<LayerRule>& layer_rules() {
  static const std::vector<LayerRule> kDag = {
      {"util", {}},
      {"lp", {"util"}},
      {"queueing", {"util"}},
      {"market", {"lp", "util"}},
      {"datacenter", {"queueing", "util"}},
      {"workload", {"util"}},
      {"core",
       {"datacenter", "lp", "market", "queueing", "util", "workload"}},
      {"serve",
       {"core", "datacenter", "lp", "market", "queueing", "util",
        "workload"}},
  };
  return kDag;
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/' || path[i] == '\\') {
      if (i > start) parts.emplace_back(path.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool is_src_layer(std::string_view name) {
  for (const LayerRule& r : layer_rules())
    if (name == r.name) return true;
  return false;
}

}  // namespace

const std::vector<std::string>& src_layers() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const LayerRule& r : layer_rules()) names.push_back(r.name);
    return names;
  }();
  return kNames;
}

const std::vector<std::string>* allowed_dependencies(std::string_view from) {
  for (const LayerRule& r : layer_rules())
    if (from == r.name) return &r.deps;
  return nullptr;
}

std::string layer_of_path(std::string_view path) {
  const std::vector<std::string> parts = split_path(path);
  // The *last* "src" component wins so fixture trees
  // (tests/lint/fixtures/<case>/src/<layer>/x.cpp) layer exactly like the
  // real tree.
  for (std::size_t i = parts.size(); i-- > 1;) {
    if (parts[i - 1] == "src" && is_src_layer(parts[i]))
      return parts[i];
  }
  return {};
}

std::string layer_of_include(std::string_view include_path) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string_view::npos) return {};
  const std::string head(include_path.substr(0, slash));
  return is_src_layer(head) ? head : std::string{};
}

namespace {

bool basename_is_test(std::string_view path) {
  const std::vector<std::string> parts = split_path(path);
  if (parts.empty()) return false;
  return parts.back().find("_test.") != std::string::npos;
}

bool basename_is(std::string_view path, std::string_view name) {
  const std::vector<std::string> parts = split_path(path);
  return !parts.empty() && parts.back() == name;
}

/// Extracts `kName = "value"` string declarations from the key registry's
/// token stream. Dynamic-key helpers (feed_rng(i) and friends) declare no
/// literal at an `=`, so they contribute nothing here.
std::vector<KeyDecl> parse_key_registry(const SourceFile& sf) {
  std::vector<KeyDecl> keys;
  const std::vector<Token>& t = sf.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdentifier && t[i].text.size() > 1 &&
        t[i].text[0] == 'k' && t[i + 1].kind == TokKind::kPunct &&
        t[i + 1].text == "=" && t[i + 2].kind == TokKind::kString)
      keys.push_back({t[i].text, t[i + 2].text, t[i].line});
  }
  return keys;
}

/// Extracts `kName = value` integer enumerators from the exit-code
/// registry's token stream.
std::vector<ExitDecl> parse_exit_registry(const SourceFile& sf) {
  std::vector<ExitDecl> codes;
  const std::vector<Token>& t = sf.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdentifier && t[i].text.size() > 1 &&
        t[i].text[0] == 'k' && t[i + 1].kind == TokKind::kPunct &&
        t[i + 1].text == "=" && t[i + 2].kind == TokKind::kNumber) {
      int value = 0;
      bool numeric = true;
      for (const char c : t[i + 2].text) {
        if (c < '0' || c > '9') {
          numeric = false;  // hex/float enumerators are not exit codes
          break;
        }
        value = value * 10 + (c - '0');
        if (value > 255) break;
      }
      if (numeric && value <= 255)
        codes.push_back({t[i].text, value, t[i].line});
    }
  }
  return codes;
}

}  // namespace

RepoModel build_model(const std::vector<std::string>& files) {
  RepoModel model;
  model.files.reserve(files.size());
  for (const std::string& path : files) {
    FileModel fm;
    fm.path = path;
    fm.layer = layer_of_path(path);
    fm.test_file = basename_is_test(path);
    fm.source = load_source(path);
    fm.suppress = collect_suppressions(path, fm.source);
    model.files.push_back(std::move(fm));
  }
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const FileModel& fm = model.files[i];
    if (basename_is(fm.path, "checkpoint_keys.hpp")) {
      model.keys_file = static_cast<std::ptrdiff_t>(i);
      model.journal_keys = parse_key_registry(fm.source);
    } else if (basename_is(fm.path, "exit_codes.hpp")) {
      model.exits_file = static_cast<std::ptrdiff_t>(i);
      model.exit_codes = parse_exit_registry(fm.source);
    }
  }
  return model;
}

}  // namespace billcap::lint
