#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>

namespace billcap::lint {

namespace {

// ---- rule catalogue --------------------------------------------------------

constexpr std::array<RuleInfo, 13> kRules = {{
    {Rule::kWallClock, "BL001", "wall-clock",
     "wall-clock time and ambient PRNGs make a resumed month diverge from "
     "an uninterrupted one"},
    {Rule::kUnorderedIter, "BL002", "unordered-iter",
     "unordered container iteration order is unspecified and must never "
     "feed serialized output"},
    {Rule::kFloatFormat, "BL003", "float-format",
     "floating output without explicit precision depends on library "
     "defaults and silently loses bits"},
    {Rule::kExitCode, "BL010", "exit-code",
     "the exit-code protocol lives in core::ExitCode; scattered literals "
     "drift"},
    {Rule::kJournalKey, "BL011", "journal-key",
     "journal keys live in src/core/checkpoint_keys.hpp; a typo'd raw key "
     "silently drops state on resume"},
    {Rule::kRawWrite, "BL012", "raw-write",
     "durable writes must go through the atomic temp+rename path "
     "(util::Journal / util::CsvWriter)"},
    {Rule::kCatchAll, "BL020", "catch-all",
     "a swallowed exception must tag a FailureReason or rethrow; silence "
     "hides degradation"},
    {Rule::kTodoIssue, "BL021", "todo-issue",
     "a TODO/FIXME without an issue reference (#N) is untracked debt"},
    {Rule::kUnboundedQueue, "BL022", "unbounded-queue",
     "a container growing inside a loop with no visible bound is an OOM "
     "under overload; serving-path buffers must be capacity-checked"},
    {Rule::kSolveAlloc, "BL023", "solve-alloc",
     "the lp solver's loops must not touch the heap — the arena is sized "
     "before iteration starts; reserve up front or annotate "
     "allow(solve-alloc)"},
    {Rule::kParallelReduce, "BL024", "parallel-reduce",
     "a reduction whose order depends on thread scheduling (accumulating "
     "under a mutex, atomic adds on floats) breaks bitwise determinism; "
     "write results to indexed slots and fold in a fixed order"},
    {Rule::kFixedPoint, "BL025", "fixed-point",
     "a convergence-driven while loop with no visible iteration cap or "
     "epsilon exit can cycle forever (a fixed point is a hope, not a "
     "bound); cap the iterations like the market coupler's max_iters"},
    {Rule::kBareAllow, "BL030", "bare-allow",
     "every suppression must say why the hazard is sanctioned"},
}};

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c));
}

std::size_t skip_spaces(std::string_view s, std::size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos;
}

// ---- lexing ----------------------------------------------------------------

/// One physical source line, split into the three channels rules care
/// about. String-literal *contents* are moved to `strings` (delimiters stay
/// in `code` so call shapes like `.set("` remain visible); comment text is
/// moved to `comment`.
struct LineInfo {
  std::string code;
  std::string strings;
  std::string comment;
};

std::vector<LineInfo> lex(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  std::vector<LineInfo> lines;
  LineInfo current;
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of an active raw string

  auto end_line = [&] {
    lines.push_back(std::move(current));
    current = LineInfo{};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;  // line comments and sane literals end here
      }
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          const bool raw = !current.code.empty() &&
                           current.code.back() == 'R' &&
                           (current.code.size() < 2 ||
                            !is_word(current.code[current.code.size() - 2]));
          current.code.push_back('"');
          if (!current.strings.empty()) current.strings.push_back(' ');
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n')
              delim.push_back(text[j++]);
            raw_end = ")" + delim + "\"";
            i = j;  // consume up to and including '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kChar;
        } else {
          current.code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        current.comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          current.strings.push_back(text[++i]);
        } else if (c == '"') {
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.strings.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.strings.push_back(c);
        }
        break;
    }
  }
  end_line();
  return lines;
}

/// Calls `fn(identifier, pos)` for every identifier token in `code`.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_word(code[i]) && !is_digit(code[i])) {
      std::size_t j = i;
      while (j < code.size() && is_word(code[j])) ++j;
      fn(code.substr(i, j - i), i);
      i = j;
    } else {
      ++i;
    }
  }
}

bool followed_by_call(std::string_view code, std::size_t end_pos) {
  const std::size_t p = skip_spaces(code, end_pos);
  return p < code.size() && code[p] == '(';
}

// ---- suppressions ----------------------------------------------------------

struct Suppressions {
  /// line (0-based) -> rules allowed on that line.
  std::vector<std::set<Rule>> allowed;
  std::vector<Finding> bare_allow_findings;
};

Suppressions collect_suppressions(std::string_view path,
                                  const std::vector<LineInfo>& lines) {
  Suppressions out;
  out.allowed.resize(lines.size() + 1);
  constexpr std::string_view kMarker = "billcap-lint:";
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& comment = lines[n].comment;
    std::size_t at = comment.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::size_t pos = comment.find("allow(", at);
    if (pos == std::string_view::npos) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "billcap-lint annotation without an allow(<rule>) clause"});
      continue;
    }
    pos += std::string_view("allow(").size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) continue;
    const std::string name = comment.substr(pos, close - pos);
    const RuleInfo* rule = find_rule(name);
    if (rule == nullptr) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") names no billcap-lint rule"});
      continue;
    }
    // The annotation sanctions this line and the one directly below it, so
    // a whole-line comment can precede the hazard.
    out.allowed[n].insert(rule->rule);
    if (n + 1 < out.allowed.size()) out.allowed[n + 1].insert(rule->rule);
    // Rationale: a ':' after the close paren with real text behind it.
    const std::size_t colon = skip_spaces(comment, close + 1);
    const bool has_rationale =
        colon < comment.size() && comment[colon] == ':' &&
        skip_spaces(comment, colon + 1) < comment.size();
    if (!has_rationale)
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") without a rationale — write 'allow(" + name +
               "): <why this site is sanctioned>'"});
  }
  return out;
}

// ---- per-rule checks -------------------------------------------------------

/// BL001 tokens that are hazardous on sight (type/namespace names).
constexpr std::string_view kClockTokens[] = {
    "system_clock", "steady_clock",  "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
    "localtime",     "gmtime",       "localtime_r",
    "gmtime_r",      "timespec_get",
};

/// BL001 tokens that are only hazardous as calls (short common words).
constexpr std::string_view kClockCallTokens[] = {
    "rand", "srand", "time", "clock", "drand48", "lrand48", "mrand48",
};

constexpr std::string_view kUnorderedTokens[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

constexpr std::string_view kPrintfTokens[] = {
    "printf", "fprintf", "sprintf", "snprintf",
    "vprintf", "vfprintf", "vsnprintf", "dprintf",
};

constexpr std::string_view kRawWriteCallTokens[] = {"fopen", "freopen"};

constexpr std::string_view kJournalAccessors[] = {
    "set",          "set_u64",        "set_size", "set_double_bits",
    "set_double_list", "get",         "get_u64",  "get_size",
    "get_double_bits", "get_double_list", "has",
};

template <typename Range>
bool contains(const Range& range, std::string_view token) {
  return std::find(std::begin(range), std::end(range), token) !=
         std::end(range);
}

void check_wall_clock(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (contains(kClockTokens, tok) ||
        (contains(kClockCallTokens, tok) &&
         followed_by_call(code, pos + tok.size())))
      hits.push_back("call to '" + std::string(tok) +
                     "' — wall-clock/ambient randomness breaks bitwise "
                     "resume; use the seeded util::Rng or the simulated "
                     "hour, or annotate allow(wall-clock)");
  });
}

void check_unordered(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t) {
    if (contains(kUnorderedTokens, tok))
      hits.push_back("'" + std::string(tok) +
                     "' — iteration order is unspecified and must not feed "
                     "serialized output; use std::map/std::set or annotate "
                     "allow(unordered-iter)");
  });
}

/// True when `spec` (the text between '%' and the conversion char,
/// exclusive) carries an explicit precision.
void check_float_format(const LineInfo& line, std::vector<std::string>& hits) {
  bool has_printf = false;
  for_each_identifier(line.code, [&](std::string_view tok, std::size_t) {
    has_printf = has_printf || contains(kPrintfTokens, tok);
  });
  if (!has_printf) return;
  const std::string& s = line.strings;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < s.size() && s[j] == '%') {
      i = j;
      continue;
    }
    bool has_precision = false;
    while (j < s.size() &&
           (is_digit(s[j]) || s[j] == '-' || s[j] == '+' || s[j] == ' ' ||
            s[j] == '#' || s[j] == '0' || s[j] == '*' || s[j] == '.' ||
            s[j] == 'h' || s[j] == 'l' || s[j] == 'j' || s[j] == 'z' ||
            s[j] == 't' || s[j] == 'L')) {
      has_precision = has_precision || s[j] == '.';
      ++j;
    }
    if (j < s.size() && !has_precision &&
        (s[j] == 'f' || s[j] == 'F' || s[j] == 'e' || s[j] == 'E' ||
         s[j] == 'g' || s[j] == 'G' || s[j] == 'a' || s[j] == 'A'))
      hits.push_back(
          "float conversion '%" + s.substr(i + 1, j - i) +
          "' without explicit precision — output depends on library "
          "defaults; write an explicit '.<N>' or use util::format_double");
    i = j;
  }
}

void check_exit_code(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    const std::size_t end = pos + tok.size();
    if (tok == "return") {
      std::size_t p = skip_spaces(code, end);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p || digits - p > 3) return;  // exit codes are 0..255
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ';') return;
      const int value = std::stoi(std::string(code.substr(p, digits - p)));
      if (value >= 2)
        hits.push_back("raw exit-code literal " + std::to_string(value) +
                       " — name it in core::ExitCode "
                       "(src/core/exit_codes.hpp)");
    } else if (tok == "exit" || tok == "_exit" || tok == "quick_exit") {
      std::size_t p = skip_spaces(code, end);
      if (p >= code.size() || code[p] != '(') return;
      p = skip_spaces(code, p + 1);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p) return;
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ')') return;
      hits.push_back("raw exit-code literal in " + std::string(tok) +
                     "() — name it in core::ExitCode "
                     "(src/core/exit_codes.hpp)");
    }
  });
}

void check_journal_key(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (pos == 0 || code[pos - 1] != '.') return;
    if (!contains(kJournalAccessors, tok)) return;
    std::size_t p = skip_spaces(code, pos + tok.size());
    if (p >= code.size() || code[p] != '(') return;
    p = skip_spaces(code, p + 1);
    if (p < code.size() && code[p] == '"')
      hits.push_back("raw string key in ." + std::string(tok) +
                     "(\"...\") — declare the key in "
                     "src/core/checkpoint_keys.hpp so reads and writes "
                     "cannot drift");
  });
}

void check_raw_write(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (tok == "ofstream") {
      hits.push_back(
          "'ofstream' — raw file write bypasses the atomic temp+rename "
          "path; use util::Journal::save_atomic / util::CsvWriter, or "
          "annotate allow(raw-write)");
    } else if (contains(kRawWriteCallTokens, tok) &&
               followed_by_call(code, pos + tok.size())) {
      hits.push_back("call to '" + std::string(tok) +
                     "' — raw file write bypasses the atomic temp+rename "
                     "path; use util::Journal::save_atomic / "
                     "util::CsvWriter, or annotate allow(raw-write)");
    }
  });
}

/// Returns positions of `catch (...)` openings in this line's code.
bool has_catch_all(std::string_view code) {
  for (std::size_t pos = code.find("catch"); pos != std::string_view::npos;
       pos = code.find("catch", pos + 1)) {
    if (pos > 0 && is_word(code[pos - 1])) continue;
    if (pos + 5 < code.size() && is_word(code[pos + 5])) continue;
    std::size_t p = skip_spaces(code, pos + 5);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_spaces(code, p + 1);
    if (code.compare(p, 3, "...") == 0) return true;
  }
  return false;
}

bool catch_block_handles(const std::vector<LineInfo>& lines,
                         std::size_t start) {
  // Look a few lines into the handler for a rethrow or a FailureReason
  // tag; billcap-lint is a lexer, not a parser, so the window is bounded.
  constexpr std::size_t kWindow = 8;
  for (std::size_t n = start; n < lines.size() && n < start + kWindow; ++n) {
    bool handled = false;
    for_each_identifier(lines[n].code, [&](std::string_view tok, std::size_t) {
      handled = handled || tok == "throw" || tok == "FailureReason";
    });
    if (handled) return true;
  }
  return false;
}

// ---- BL022 unbounded queue -------------------------------------------------
//
// billcap-lint is a lexer, not a parser, so the rule is shaped for low
// false-positive cost: only `while` loops are examined (the overload-risk
// shape — `for` loops carry their bound in the header), a loop whose
// condition shows any bounding evidence is trusted, and one capacity
// check anywhere in the body sanctions every growth call in it.

constexpr std::string_view kGrowthCalls[] = {
    "push_back", "emplace_back", "push", "emplace", "push_front",
    "emplace_front", "append",
};

/// Tokens whose presence in a loop body shows the growth is accounted
/// for: a capacity/size check, a matching consumer, or a loop escape.
constexpr std::string_view kCapacityEvidence[] = {
    "size",  "capacity", "full",  "empty", "reserve", "resize",
    "pop",   "pop_back", "pop_front", "drop", "drain", "take",
    "erase", "clear",    "break",
};

/// A while condition is bounded when it compares against a limit, tests a
/// container's state, or extracts from a stream (EOF-bounded). '<' and '>'
/// also cover stream extraction and shifts — over-trusting the condition
/// is the cheap direction; the rule exists to catch `while (true)` and
/// bare-flag spins that buffer without a cap.
bool while_condition_bounded(std::string_view cond) {
  if (cond.find('<') != std::string_view::npos ||
      cond.find('>') != std::string_view::npos ||
      cond.find("!=") != std::string_view::npos ||
      cond.find("==") != std::string_view::npos)
    return true;
  bool bounded = false;
  for_each_identifier(cond, [&](std::string_view tok, std::size_t) {
    bounded = bounded || tok == "size" || tok == "empty" ||
              tok == "capacity" || tok == "full" || tok == "getline";
  });
  return bounded;
}

struct LoopGrowth {
  std::size_t line = 0;  ///< 0-based line of the growth call
  std::string call;
};

/// Scans the `while` loop whose keyword sits at `lines[n].code[pos]`;
/// reports growth calls when the loop shows no bound anywhere. Windows are
/// hard-capped so a brace imbalance cannot make the scan quadratic.
void scan_while_loop(const std::vector<LineInfo>& lines, std::size_t n,
                     std::size_t pos, std::vector<LoopGrowth>& growths) {
  constexpr std::size_t kConditionWindow = 6;
  constexpr std::size_t kBodyWindow = 96;

  // Collect the condition text across lines, tracking paren depth.
  std::string cond;
  int depth = 0;
  bool in_cond = false;
  std::size_t body_line = n;
  std::size_t body_col = 0;
  bool found_close = false;
  for (std::size_t m = n; m < lines.size() && m < n + kConditionWindow && !found_close; ++m) {
    const std::string& code = lines[m].code;
    for (std::size_t i = m == n ? pos : 0; i < code.size(); ++i) {
      const char c = code[i];
      if (!in_cond) {
        if (c == '(') {
          in_cond = true;
          depth = 1;
        }
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        body_line = m;
        body_col = i + 1;
        found_close = true;
        break;
      }
      cond.push_back(c);
    }
  }
  if (!found_close || while_condition_bounded(cond)) return;

  // Walk the body (braced or single-statement), recording growth calls
  // and capacity evidence; the whole body is one sanction scope.
  bool evidence = false;
  std::vector<LoopGrowth> local;
  int braces = 0;
  bool braced = false;
  bool done = false;
  for (std::size_t m = body_line;
       m < lines.size() && m < body_line + kBodyWindow && !done; ++m) {
    const std::string& code = lines[m].code;
    const std::size_t start = m == body_line ? body_col : 0;
    const std::string_view body(code.data() + start, code.size() - start);
    for_each_identifier(body, [&](std::string_view tok, std::size_t at) {
      if (contains(kCapacityEvidence, tok)) evidence = true;
      if (contains(kGrowthCalls, tok) && at > 0 &&
          (body[at - 1] == '.' || body[at - 1] == '>') &&
          followed_by_call(body, at + tok.size()))
        local.push_back({m, std::string(tok)});
    });
    for (std::size_t i = start; i < code.size(); ++i) {
      if (code[i] == '{') {
        ++braces;
        braced = true;
      } else if (code[i] == '}') {
        if (braced && --braces == 0) done = true;
      } else if (code[i] == ';' && !braced) {
        done = true;  // single-statement body
      }
    }
  }
  if (!evidence)
    growths.insert(growths.end(), local.begin(), local.end());
}

/// BL022 pass over the whole translation unit.
std::vector<LoopGrowth> check_unbounded_queues(
    const std::vector<LineInfo>& lines) {
  std::vector<LoopGrowth> growths;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    for_each_identifier(lines[n].code, [&](std::string_view tok,
                                           std::size_t pos) {
      if (tok == "while") scan_while_loop(lines, n, pos + tok.size(), growths);
    });
  }
  return growths;
}

// ---- BL025 fixed-point -----------------------------------------------------
//
// The closed-loop coupler's lesson institutionalized: a convergence-driven
// while loop (`while (!converged)`, `while (oscillating)`) can spin forever
// on a period-2 cycle — reaching the fixed point is a hope, not a bound.
// Same lexer-grade shaping as BL022: only `while` loops are examined, and
// the cheap direction is trusting the loop. A loop fires only when its
// condition carries convergence vocabulary AND neither the condition nor
// the (windowed) body shows bounding evidence: an epsilon/cap comparison
// ('<'/'>') in the condition, an iteration-counter identifier, or a loop
// escape (break/return/throw/goto) in the body.

constexpr std::string_view kConvergenceMarkers[] = {
    "converg", "residual", "oscillat", "fixed_point", "fixpoint", "settle",
};

constexpr std::string_view kIterationMarkers[] = {
    "iter", "round", "attempt", "budget",
};

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool has_any_marker(std::string_view token,
                    std::span<const std::string_view> markers) {
  const std::string low = lowered(token);
  for (const std::string_view m : markers)
    if (low.find(m) != std::string::npos) return true;
  return false;
}

/// Scans the `while` loop whose keyword ends at `lines[n].code[pos]`;
/// appends its 0-based line to `out` when it is an unbounded convergence
/// loop. Windowing mirrors scan_while_loop.
void scan_convergence_loop(const std::vector<LineInfo>& lines, std::size_t n,
                           std::size_t pos, std::vector<std::size_t>& out) {
  constexpr std::size_t kConditionWindow = 6;
  constexpr std::size_t kBodyWindow = 96;

  std::string cond;
  int depth = 0;
  bool in_cond = false;
  std::size_t body_line = n;
  std::size_t body_col = 0;
  bool found_close = false;
  for (std::size_t m = n;
       m < lines.size() && m < n + kConditionWindow && !found_close; ++m) {
    const std::string& code = lines[m].code;
    for (std::size_t i = m == n ? pos : 0; i < code.size(); ++i) {
      const char c = code[i];
      if (!in_cond) {
        if (c == '(') {
          in_cond = true;
          depth = 1;
        }
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        body_line = m;
        body_col = i + 1;
        found_close = true;
        break;
      }
      cond.push_back(c);
    }
  }
  if (!found_close) return;

  bool convergence = false;
  bool counter_in_cond = false;
  for_each_identifier(cond, [&](std::string_view tok, std::size_t) {
    convergence = convergence || has_any_marker(tok, kConvergenceMarkers);
    counter_in_cond = counter_in_cond ||
                      has_any_marker(tok, kIterationMarkers);
  });
  if (!convergence) return;
  // An epsilon exit or a cap comparison right in the condition, or an
  // iteration counter driving it alongside the convergence flag.
  if (cond.find('<') != std::string::npos ||
      cond.find('>') != std::string::npos || counter_in_cond)
    return;

  bool bounded = false;
  int braces = 0;
  bool braced = false;
  bool done = false;
  for (std::size_t m = body_line;
       m < lines.size() && m < body_line + kBodyWindow && !done; ++m) {
    const std::string& code = lines[m].code;
    const std::size_t start = m == body_line ? body_col : 0;
    const std::string_view body(code.data() + start, code.size() - start);
    for_each_identifier(body, [&](std::string_view tok, std::size_t) {
      bounded = bounded || tok == "break" || tok == "return" ||
                tok == "throw" || tok == "goto" ||
                has_any_marker(tok, kIterationMarkers);
    });
    for (std::size_t i = start; i < code.size(); ++i) {
      if (code[i] == '{') {
        ++braces;
        braced = true;
      } else if (code[i] == '}') {
        if (braced && --braces == 0) done = true;
      } else if (code[i] == ';' && !braced) {
        done = true;  // single-statement body
      }
    }
  }
  if (!bounded) out.push_back(n);
}

/// BL025 pass over the whole translation unit.
std::vector<std::size_t> check_fixed_point(
    const std::vector<LineInfo>& lines) {
  std::vector<std::size_t> loops;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    for_each_identifier(lines[n].code, [&](std::string_view tok,
                                           std::size_t pos) {
      if (tok == "while")
        scan_convergence_loop(lines, n, pos + tok.size(), loops);
    });
  }
  return loops;
}

// ---- BL023 solve allocation ------------------------------------------------
//
// The arena solver's contract is an allocation-free steady state: every
// tableau row, basis array and branch-and-bound node lives in storage
// sized before iteration starts. In a translation unit that opens the
// billcap lp namespace, any loop body (`while` or `for` — the simplex
// pivots and the node stack drive both) that calls a raw allocator is
// flagged, and container growth is flagged unless a reserve() sizing
// pass appears on an earlier line of the file. Like BL022 this is a
// lexer-grade rule: the reserve does not have to size the exact
// container that grows — it is evidence the file has a sizing pass, and
// the differential/property suites are what prove the arena correct.

constexpr std::string_view kAllocCalls[] = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc",
};

struct SolveAlloc {
  std::size_t line = 0;  ///< 0-based line of the offending call
  std::string call;
  bool growth = false;   ///< growth call (reserve-sanctionable) vs allocator
};

bool operator<(const SolveAlloc& a, const SolveAlloc& b) {
  return a.line != b.line ? a.line < b.line : a.call < b.call;
}

bool operator==(const SolveAlloc& a, const SolveAlloc& b) {
  return a.line == b.line && a.call == b.call;
}

/// Scans the loop whose `while`/`for` keyword ends at `lines[n].code[pos]`,
/// recording allocator and growth calls in its body. Same windowing as
/// scan_while_loop: brace-matched, hard-capped so a brace imbalance cannot
/// make the scan quadratic.
void scan_solve_loop(const std::vector<LineInfo>& lines, std::size_t n,
                     std::size_t pos, std::vector<SolveAlloc>& out) {
  constexpr std::size_t kHeaderWindow = 6;
  constexpr std::size_t kBodyWindow = 96;

  // Find the close paren of the loop header.
  int depth = 0;
  bool in_header = false;
  std::size_t body_line = n;
  std::size_t body_col = 0;
  bool found_close = false;
  for (std::size_t m = n; m < lines.size() && m < n + kHeaderWindow && !found_close; ++m) {
    const std::string& code = lines[m].code;
    for (std::size_t i = m == n ? pos : 0; i < code.size(); ++i) {
      const char c = code[i];
      if (!in_header) {
        if (c == '(') {
          in_header = true;
          depth = 1;
        }
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        body_line = m;
        body_col = i + 1;
        found_close = true;
        break;
      }
    }
  }
  if (!found_close) return;

  int braces = 0;
  bool braced = false;
  bool done = false;
  for (std::size_t m = body_line;
       m < lines.size() && m < body_line + kBodyWindow && !done; ++m) {
    const std::string& code = lines[m].code;
    const std::size_t start = m == body_line ? body_col : 0;
    const std::string_view body(code.data() + start, code.size() - start);
    for_each_identifier(body, [&](std::string_view tok, std::size_t at) {
      if (tok == "new") {
        out.push_back({m, "new", false});
      } else if (contains(kAllocCalls, tok) &&
                 followed_by_call(body, at + tok.size())) {
        out.push_back({m, std::string(tok), false});
      } else if (contains(kGrowthCalls, tok) && at > 0 &&
                 (body[at - 1] == '.' || body[at - 1] == '>') &&
                 followed_by_call(body, at + tok.size())) {
        out.push_back({m, std::string(tok), true});
      }
    });
    for (std::size_t i = start; i < code.size(); ++i) {
      if (code[i] == '{') {
        ++braces;
        braced = true;
      } else if (code[i] == '}') {
        if (braced && --braces == 0) done = true;
      } else if (code[i] == ';' && !braced) {
        done = true;  // single-statement body
      }
    }
  }
}

/// BL023 pass over the whole translation unit. Nested loops scan inner
/// bodies once per enclosing loop, so findings are deduped by position.
std::vector<SolveAlloc> check_solve_alloc(const std::vector<LineInfo>& lines) {
  std::vector<SolveAlloc> found;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    for_each_identifier(lines[n].code, [&](std::string_view tok,
                                           std::size_t pos) {
      if (tok == "while" || tok == "for")
        scan_solve_loop(lines, n, pos + tok.size(), found);
    });
  }
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
  return found;
}

void check_todo(std::string_view comment, std::vector<std::string>& hits) {
  const bool todo = comment.find("TODO") != std::string_view::npos ||
                    comment.find("FIXME") != std::string_view::npos;
  if (!todo) return;
  for (std::size_t i = 0; i + 1 < comment.size(); ++i)
    if (comment[i] == '#' && is_digit(comment[i + 1])) return;
  hits.push_back(
      "TODO/FIXME without an issue reference — add '(#<issue>)' or do it "
      "now");
}

}  // namespace

// ---- public API ------------------------------------------------------------

const std::array<RuleInfo, 13>& rule_table() { return kRules; }

const RuleInfo& info(Rule rule) {
  for (const RuleInfo& r : kRules)
    if (r.rule == rule) return r;
  return kRules[0];  // unreachable: every enumerator is in the table
}

const RuleInfo* find_rule(std::string_view name) {
  for (const RuleInfo& r : kRules)
    if (name == r.name) return &r;
  return nullptr;
}

std::string format_finding(const Finding& finding) {
  const RuleInfo& r = info(finding.rule);
  return finding.file + ":" + std::to_string(finding.line) + ": [" + r.id +
         " " + r.name + "] " + finding.message;
}

namespace {

// ---- BL024 parallel reduce -------------------------------------------------
//
// Only translation units that visibly touch the worker-pool machinery are
// examined (content-based, like the journal-key gate). Two shapes are
// flagged: a floating-point std::atomic accumulator (including fetch_add,
// whose float overloads reduce in scheduling order), and a `+=` within a
// few lines of a lock construction — the accumulate-under-mutex idiom,
// where the *values* are protected but the fold order still follows thread
// scheduling. The sanctioned shape writes each task's result to its own
// indexed slot and folds serially in index order (see core/fleet.cpp).

struct ParallelReduce {
  std::size_t line = 0;
  std::string what;
};

std::vector<ParallelReduce> check_parallel_reduce(
    const std::vector<LineInfo>& lines) {
  std::vector<ParallelReduce> out;
  // A lock taken a couple of lines above an accumulation still guards it;
  // beyond that the scope has usually ended (billcap-lint is a lexer).
  constexpr std::size_t kLockWindow = 3;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string_view code = lines[n].code;
    bool atomic_float = false;
    bool lock_line = false;
    for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
      if (tok == "atomic") {
        std::size_t p = skip_spaces(code, pos + tok.size());
        if (p < code.size() && code[p] == '<') {
          p = skip_spaces(code, p + 1);
          const std::string_view rest = code.substr(p);
          atomic_float = atomic_float || rest.starts_with("double") ||
                         rest.starts_with("float");
        }
      }
      if (tok == "fetch_add") out.push_back({n, "fetch_add"});
      lock_line = lock_line || tok == "lock_guard" || tok == "scoped_lock" ||
                  tok == "unique_lock";
    });
    if (atomic_float) out.push_back({n, "atomic floating accumulator"});
    if (lock_line) {
      for (std::size_t m = n + 1;
           m < lines.size() && m <= n + kLockWindow; ++m) {
        if (lines[m].code.find("+=") != std::string_view::npos) {
          out.push_back({m, "accumulation under a lock"});
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> scan_source(std::string_view path,
                                 std::string_view text) {
  const std::vector<LineInfo> lines = lex(text);
  Suppressions suppress = collect_suppressions(path, lines);

  // Applicability is content-based so fixtures behave like real sources:
  // the exit-code rule guards exit surfaces, the journal-key rule guards
  // translation units that touch util::Journal directly.
  const bool exit_surface =
      text.find("int main(") != std::string_view::npos ||
      text.find("core/supervisor.hpp") != std::string_view::npos ||
      text.find("core/exit_codes.hpp") != std::string_view::npos;
  const bool journal_user =
      text.find("util/journal.hpp") != std::string_view::npos;
  // The literal is split so the scanner's own source does not gate itself
  // into the solver rule.
  const bool lp_solver_tu =
      text.find("namespace billcap::" "lp") != std::string_view::npos;
  // Same trick: only worker-pool translation units feed the parallel-
  // reduction rule, and the scanner must not gate itself.
  const bool parallel_tu =
      text.find("util/thread_" "pool.hpp") != std::string_view::npos ||
      text.find("Thread" "Pool") != std::string_view::npos ||
      text.find("parallel_" "for") != std::string_view::npos;

  std::vector<Finding> findings;
  const auto emit = [&](std::size_t n, Rule rule,
                        std::vector<std::string>& hits) {
    if (!suppress.allowed[n].count(rule))
      for (std::string& hit : hits)
        findings.push_back({std::string(path), n + 1, rule, std::move(hit)});
    hits.clear();
  };

  std::vector<std::string> hits;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const LineInfo& line = lines[n];
    check_wall_clock(line.code, hits);
    emit(n, Rule::kWallClock, hits);
    check_unordered(line.code, hits);
    emit(n, Rule::kUnorderedIter, hits);
    check_float_format(line, hits);
    emit(n, Rule::kFloatFormat, hits);
    if (exit_surface) {
      check_exit_code(line.code, hits);
      emit(n, Rule::kExitCode, hits);
    }
    if (journal_user) {
      check_journal_key(line.code, hits);
      emit(n, Rule::kJournalKey, hits);
    }
    check_raw_write(line.code, hits);
    emit(n, Rule::kRawWrite, hits);
    if (has_catch_all(line.code) && !catch_block_handles(lines, n)) {
      hits.push_back(
          "catch (...) swallows without tagging a FailureReason or "
          "rethrowing; tag the degradation or annotate allow(catch-all)");
      emit(n, Rule::kCatchAll, hits);
    }
    check_todo(line.comment, hits);
    emit(n, Rule::kTodoIssue, hits);
  }

  for (const LoopGrowth& g : check_unbounded_queues(lines)) {
    if (!suppress.allowed[g.line].count(Rule::kUnboundedQueue))
      findings.push_back(
          {std::string(path), g.line + 1, Rule::kUnboundedQueue,
           "'" + g.call +
               "' grows a container inside a while loop with no visible "
               "bound — cap it, drain it, or check capacity before pushing "
               "(the ingest plane's BoundedQueue shape), or annotate "
               "allow(unbounded-queue)"});
  }

  for (const std::size_t n : check_fixed_point(lines)) {
    if (!suppress.allowed[n].count(Rule::kFixedPoint))
      findings.push_back(
          {std::string(path), n + 1, Rule::kFixedPoint,
           "convergence-driven while loop with no visible iteration cap or "
           "epsilon exit — the loop can cycle forever on a period-2 orbit; "
           "cap the iterations (the market coupler's max_iters shape), "
           "compare against a tolerance in the condition, or annotate "
           "allow(fixed-point)"});
  }

  if (lp_solver_tu) {
    // Growth is sanctioned by a reserve() sizing pass on an earlier line;
    // raw allocators in a loop body are flagged unconditionally.
    std::size_t first_reserve = lines.size();
    for (std::size_t n = 0; n < lines.size() && first_reserve == lines.size();
         ++n) {
      for_each_identifier(lines[n].code, [&](std::string_view tok,
                                             std::size_t pos) {
        if (tok == "reserve" && followed_by_call(lines[n].code, pos + 7))
          first_reserve = std::min(first_reserve, n);
      });
    }
    for (const SolveAlloc& a : check_solve_alloc(lines)) {
      if (a.growth && first_reserve <= a.line) continue;
      if (suppress.allowed[a.line].count(Rule::kSolveAlloc)) continue;
      findings.push_back(
          {std::string(path), a.line + 1, Rule::kSolveAlloc,
           a.growth
               ? "'" + a.call +
                     "' grows a container inside a solver loop with no "
                     "reserve() sizing pass earlier in the file — size the "
                     "arena before iterating or annotate allow(solve-alloc)"
               : "'" + a.call +
                     "' allocates inside a solver loop — the solver's steady "
                     "state must not touch the heap; move the allocation to "
                     "setup or annotate allow(solve-alloc)"});
    }
  }

  if (parallel_tu) {
    for (const ParallelReduce& p : check_parallel_reduce(lines)) {
      if (suppress.allowed[p.line].count(Rule::kParallelReduce)) continue;
      findings.push_back(
          {std::string(path), p.line + 1, Rule::kParallelReduce,
           p.what +
               " reduces in thread-scheduling order, which breaks bitwise "
               "determinism across thread counts — write each task's result "
               "to its own indexed slot and fold serially in index order, "
               "or annotate allow(parallel-reduce)"});
    }
  }

  for (Finding& f : suppress.bare_allow_findings)
    findings.push_back(std::move(f));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line
                                      : info(a.rule).id < info(b.rule).id;
            });
  return findings;
}

std::vector<Finding> scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("billcap-lint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_source(path, buffer.str());
}

bool is_scannable(std::string_view path) {
  for (std::string_view ext : {".cpp", ".cc", ".hpp", ".h"})
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
      return true;
  return false;
}

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const fs::path p(root);
  if (fs::is_regular_file(p)) {
    if (is_scannable(root)) files.push_back(root);
    return files;
  }
  if (!fs::is_directory(p))
    throw std::runtime_error("billcap-lint: no such file or directory: " +
                             root);
  for (const auto& entry : fs::recursive_directory_iterator(p))
    if (entry.is_regular_file() && is_scannable(entry.path().string()))
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

std::map<std::string, std::size_t> summarize(
    const std::vector<Finding>& all) {
  std::map<std::string, std::size_t> counts;
  for (const RuleInfo& r : kRules) counts[r.id] = 0;
  for (const Finding& f : all) ++counts[info(f.rule).id];
  return counts;
}

}  // namespace billcap::lint
