#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace billcap::lint {

namespace {

// ---- rule catalogue --------------------------------------------------------

constexpr std::array<RuleInfo, 9> kRules = {{
    {Rule::kWallClock, "BL001", "wall-clock",
     "wall-clock time and ambient PRNGs make a resumed month diverge from "
     "an uninterrupted one"},
    {Rule::kUnorderedIter, "BL002", "unordered-iter",
     "unordered container iteration order is unspecified and must never "
     "feed serialized output"},
    {Rule::kFloatFormat, "BL003", "float-format",
     "floating output without explicit precision depends on library "
     "defaults and silently loses bits"},
    {Rule::kExitCode, "BL010", "exit-code",
     "the exit-code protocol lives in core::ExitCode; scattered literals "
     "drift"},
    {Rule::kJournalKey, "BL011", "journal-key",
     "journal keys live in src/core/checkpoint_keys.hpp; a typo'd raw key "
     "silently drops state on resume"},
    {Rule::kRawWrite, "BL012", "raw-write",
     "durable writes must go through the atomic temp+rename path "
     "(util::Journal / util::CsvWriter)"},
    {Rule::kCatchAll, "BL020", "catch-all",
     "a swallowed exception must tag a FailureReason or rethrow; silence "
     "hides degradation"},
    {Rule::kTodoIssue, "BL021", "todo-issue",
     "a TODO/FIXME without an issue reference (#N) is untracked debt"},
    {Rule::kBareAllow, "BL030", "bare-allow",
     "every suppression must say why the hazard is sanctioned"},
}};

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c));
}

std::size_t skip_spaces(std::string_view s, std::size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos;
}

// ---- lexing ----------------------------------------------------------------

/// One physical source line, split into the three channels rules care
/// about. String-literal *contents* are moved to `strings` (delimiters stay
/// in `code` so call shapes like `.set("` remain visible); comment text is
/// moved to `comment`.
struct LineInfo {
  std::string code;
  std::string strings;
  std::string comment;
};

std::vector<LineInfo> lex(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  std::vector<LineInfo> lines;
  LineInfo current;
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of an active raw string

  auto end_line = [&] {
    lines.push_back(std::move(current));
    current = LineInfo{};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;  // line comments and sane literals end here
      }
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          const bool raw = !current.code.empty() &&
                           current.code.back() == 'R' &&
                           (current.code.size() < 2 ||
                            !is_word(current.code[current.code.size() - 2]));
          current.code.push_back('"');
          if (!current.strings.empty()) current.strings.push_back(' ');
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n')
              delim.push_back(text[j++]);
            raw_end = ")" + delim + "\"";
            i = j;  // consume up to and including '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kChar;
        } else {
          current.code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        current.comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          current.strings.push_back(text[++i]);
        } else if (c == '"') {
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.strings.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.strings.push_back(c);
        }
        break;
    }
  }
  end_line();
  return lines;
}

/// Calls `fn(identifier, pos)` for every identifier token in `code`.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_word(code[i]) && !is_digit(code[i])) {
      std::size_t j = i;
      while (j < code.size() && is_word(code[j])) ++j;
      fn(code.substr(i, j - i), i);
      i = j;
    } else {
      ++i;
    }
  }
}

bool followed_by_call(std::string_view code, std::size_t end_pos) {
  const std::size_t p = skip_spaces(code, end_pos);
  return p < code.size() && code[p] == '(';
}

// ---- suppressions ----------------------------------------------------------

struct Suppressions {
  /// line (0-based) -> rules allowed on that line.
  std::vector<std::set<Rule>> allowed;
  std::vector<Finding> bare_allow_findings;
};

Suppressions collect_suppressions(std::string_view path,
                                  const std::vector<LineInfo>& lines) {
  Suppressions out;
  out.allowed.resize(lines.size() + 1);
  constexpr std::string_view kMarker = "billcap-lint:";
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& comment = lines[n].comment;
    std::size_t at = comment.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::size_t pos = comment.find("allow(", at);
    if (pos == std::string_view::npos) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "billcap-lint annotation without an allow(<rule>) clause"});
      continue;
    }
    pos += std::string_view("allow(").size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) continue;
    const std::string name = comment.substr(pos, close - pos);
    const RuleInfo* rule = find_rule(name);
    if (rule == nullptr) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") names no billcap-lint rule"});
      continue;
    }
    // The annotation sanctions this line and the one directly below it, so
    // a whole-line comment can precede the hazard.
    out.allowed[n].insert(rule->rule);
    if (n + 1 < out.allowed.size()) out.allowed[n + 1].insert(rule->rule);
    // Rationale: a ':' after the close paren with real text behind it.
    const std::size_t colon = skip_spaces(comment, close + 1);
    const bool has_rationale =
        colon < comment.size() && comment[colon] == ':' &&
        skip_spaces(comment, colon + 1) < comment.size();
    if (!has_rationale)
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") without a rationale — write 'allow(" + name +
               "): <why this site is sanctioned>'"});
  }
  return out;
}

// ---- per-rule checks -------------------------------------------------------

/// BL001 tokens that are hazardous on sight (type/namespace names).
constexpr std::string_view kClockTokens[] = {
    "system_clock", "steady_clock",  "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
    "localtime",     "gmtime",       "localtime_r",
    "gmtime_r",      "timespec_get",
};

/// BL001 tokens that are only hazardous as calls (short common words).
constexpr std::string_view kClockCallTokens[] = {
    "rand", "srand", "time", "clock", "drand48", "lrand48", "mrand48",
};

constexpr std::string_view kUnorderedTokens[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

constexpr std::string_view kPrintfTokens[] = {
    "printf", "fprintf", "sprintf", "snprintf",
    "vprintf", "vfprintf", "vsnprintf", "dprintf",
};

constexpr std::string_view kRawWriteCallTokens[] = {"fopen", "freopen"};

constexpr std::string_view kJournalAccessors[] = {
    "set",          "set_u64",        "set_size", "set_double_bits",
    "set_double_list", "get",         "get_u64",  "get_size",
    "get_double_bits", "get_double_list", "has",
};

template <typename Range>
bool contains(const Range& range, std::string_view token) {
  return std::find(std::begin(range), std::end(range), token) !=
         std::end(range);
}

void check_wall_clock(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (contains(kClockTokens, tok) ||
        (contains(kClockCallTokens, tok) &&
         followed_by_call(code, pos + tok.size())))
      hits.push_back("call to '" + std::string(tok) +
                     "' — wall-clock/ambient randomness breaks bitwise "
                     "resume; use the seeded util::Rng or the simulated "
                     "hour, or annotate allow(wall-clock)");
  });
}

void check_unordered(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t) {
    if (contains(kUnorderedTokens, tok))
      hits.push_back("'" + std::string(tok) +
                     "' — iteration order is unspecified and must not feed "
                     "serialized output; use std::map/std::set or annotate "
                     "allow(unordered-iter)");
  });
}

/// True when `spec` (the text between '%' and the conversion char,
/// exclusive) carries an explicit precision.
void check_float_format(const LineInfo& line, std::vector<std::string>& hits) {
  bool has_printf = false;
  for_each_identifier(line.code, [&](std::string_view tok, std::size_t) {
    has_printf = has_printf || contains(kPrintfTokens, tok);
  });
  if (!has_printf) return;
  const std::string& s = line.strings;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < s.size() && s[j] == '%') {
      i = j;
      continue;
    }
    bool has_precision = false;
    while (j < s.size() &&
           (is_digit(s[j]) || s[j] == '-' || s[j] == '+' || s[j] == ' ' ||
            s[j] == '#' || s[j] == '0' || s[j] == '*' || s[j] == '.' ||
            s[j] == 'h' || s[j] == 'l' || s[j] == 'j' || s[j] == 'z' ||
            s[j] == 't' || s[j] == 'L')) {
      has_precision = has_precision || s[j] == '.';
      ++j;
    }
    if (j < s.size() && !has_precision &&
        (s[j] == 'f' || s[j] == 'F' || s[j] == 'e' || s[j] == 'E' ||
         s[j] == 'g' || s[j] == 'G' || s[j] == 'a' || s[j] == 'A'))
      hits.push_back(
          "float conversion '%" + s.substr(i + 1, j - i) +
          "' without explicit precision — output depends on library "
          "defaults; write an explicit '.<N>' or use util::format_double");
    i = j;
  }
}

void check_exit_code(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    const std::size_t end = pos + tok.size();
    if (tok == "return") {
      std::size_t p = skip_spaces(code, end);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p || digits - p > 3) return;  // exit codes are 0..255
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ';') return;
      const int value = std::stoi(std::string(code.substr(p, digits - p)));
      if (value >= 2)
        hits.push_back("raw exit-code literal " + std::to_string(value) +
                       " — name it in core::ExitCode "
                       "(src/core/exit_codes.hpp)");
    } else if (tok == "exit" || tok == "_exit" || tok == "quick_exit") {
      std::size_t p = skip_spaces(code, end);
      if (p >= code.size() || code[p] != '(') return;
      p = skip_spaces(code, p + 1);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p) return;
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ')') return;
      hits.push_back("raw exit-code literal in " + std::string(tok) +
                     "() — name it in core::ExitCode "
                     "(src/core/exit_codes.hpp)");
    }
  });
}

void check_journal_key(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (pos == 0 || code[pos - 1] != '.') return;
    if (!contains(kJournalAccessors, tok)) return;
    std::size_t p = skip_spaces(code, pos + tok.size());
    if (p >= code.size() || code[p] != '(') return;
    p = skip_spaces(code, p + 1);
    if (p < code.size() && code[p] == '"')
      hits.push_back("raw string key in ." + std::string(tok) +
                     "(\"...\") — declare the key in "
                     "src/core/checkpoint_keys.hpp so reads and writes "
                     "cannot drift");
  });
}

void check_raw_write(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (tok == "ofstream") {
      hits.push_back(
          "'ofstream' — raw file write bypasses the atomic temp+rename "
          "path; use util::Journal::save_atomic / util::CsvWriter, or "
          "annotate allow(raw-write)");
    } else if (contains(kRawWriteCallTokens, tok) &&
               followed_by_call(code, pos + tok.size())) {
      hits.push_back("call to '" + std::string(tok) +
                     "' — raw file write bypasses the atomic temp+rename "
                     "path; use util::Journal::save_atomic / "
                     "util::CsvWriter, or annotate allow(raw-write)");
    }
  });
}

/// Returns positions of `catch (...)` openings in this line's code.
bool has_catch_all(std::string_view code) {
  for (std::size_t pos = code.find("catch"); pos != std::string_view::npos;
       pos = code.find("catch", pos + 1)) {
    if (pos > 0 && is_word(code[pos - 1])) continue;
    if (pos + 5 < code.size() && is_word(code[pos + 5])) continue;
    std::size_t p = skip_spaces(code, pos + 5);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_spaces(code, p + 1);
    if (code.compare(p, 3, "...") == 0) return true;
  }
  return false;
}

bool catch_block_handles(const std::vector<LineInfo>& lines,
                         std::size_t start) {
  // Look a few lines into the handler for a rethrow or a FailureReason
  // tag; billcap-lint is a lexer, not a parser, so the window is bounded.
  constexpr std::size_t kWindow = 8;
  for (std::size_t n = start; n < lines.size() && n < start + kWindow; ++n) {
    bool handled = false;
    for_each_identifier(lines[n].code, [&](std::string_view tok, std::size_t) {
      handled = handled || tok == "throw" || tok == "FailureReason";
    });
    if (handled) return true;
  }
  return false;
}

void check_todo(std::string_view comment, std::vector<std::string>& hits) {
  const bool todo = comment.find("TODO") != std::string_view::npos ||
                    comment.find("FIXME") != std::string_view::npos;
  if (!todo) return;
  for (std::size_t i = 0; i + 1 < comment.size(); ++i)
    if (comment[i] == '#' && is_digit(comment[i + 1])) return;
  hits.push_back(
      "TODO/FIXME without an issue reference — add '(#<issue>)' or do it "
      "now");
}

}  // namespace

// ---- public API ------------------------------------------------------------

const std::array<RuleInfo, 9>& rule_table() { return kRules; }

const RuleInfo& info(Rule rule) {
  for (const RuleInfo& r : kRules)
    if (r.rule == rule) return r;
  return kRules[0];  // unreachable: every enumerator is in the table
}

const RuleInfo* find_rule(std::string_view name) {
  for (const RuleInfo& r : kRules)
    if (name == r.name) return &r;
  return nullptr;
}

std::string format_finding(const Finding& finding) {
  const RuleInfo& r = info(finding.rule);
  return finding.file + ":" + std::to_string(finding.line) + ": [" + r.id +
         " " + r.name + "] " + finding.message;
}

std::vector<Finding> scan_source(std::string_view path,
                                 std::string_view text) {
  const std::vector<LineInfo> lines = lex(text);
  Suppressions suppress = collect_suppressions(path, lines);

  // Applicability is content-based so fixtures behave like real sources:
  // the exit-code rule guards exit surfaces, the journal-key rule guards
  // translation units that touch util::Journal directly.
  const bool exit_surface =
      text.find("int main(") != std::string_view::npos ||
      text.find("core/supervisor.hpp") != std::string_view::npos ||
      text.find("core/exit_codes.hpp") != std::string_view::npos;
  const bool journal_user =
      text.find("util/journal.hpp") != std::string_view::npos;

  std::vector<Finding> findings;
  const auto emit = [&](std::size_t n, Rule rule,
                        std::vector<std::string>& hits) {
    if (!suppress.allowed[n].count(rule))
      for (std::string& hit : hits)
        findings.push_back({std::string(path), n + 1, rule, std::move(hit)});
    hits.clear();
  };

  std::vector<std::string> hits;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const LineInfo& line = lines[n];
    check_wall_clock(line.code, hits);
    emit(n, Rule::kWallClock, hits);
    check_unordered(line.code, hits);
    emit(n, Rule::kUnorderedIter, hits);
    check_float_format(line, hits);
    emit(n, Rule::kFloatFormat, hits);
    if (exit_surface) {
      check_exit_code(line.code, hits);
      emit(n, Rule::kExitCode, hits);
    }
    if (journal_user) {
      check_journal_key(line.code, hits);
      emit(n, Rule::kJournalKey, hits);
    }
    check_raw_write(line.code, hits);
    emit(n, Rule::kRawWrite, hits);
    if (has_catch_all(line.code) && !catch_block_handles(lines, n)) {
      hits.push_back(
          "catch (...) swallows without tagging a FailureReason or "
          "rethrowing; tag the degradation or annotate allow(catch-all)");
      emit(n, Rule::kCatchAll, hits);
    }
    check_todo(line.comment, hits);
    emit(n, Rule::kTodoIssue, hits);
  }

  for (Finding& f : suppress.bare_allow_findings)
    findings.push_back(std::move(f));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line
                                      : info(a.rule).id < info(b.rule).id;
            });
  return findings;
}

std::vector<Finding> scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("billcap-lint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_source(path, buffer.str());
}

bool is_scannable(std::string_view path) {
  for (std::string_view ext : {".cpp", ".cc", ".hpp", ".h"})
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
      return true;
  return false;
}

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const fs::path p(root);
  if (fs::is_regular_file(p)) {
    if (is_scannable(root)) files.push_back(root);
    return files;
  }
  if (!fs::is_directory(p))
    throw std::runtime_error("billcap-lint: no such file or directory: " +
                             root);
  for (const auto& entry : fs::recursive_directory_iterator(p))
    if (entry.is_regular_file() && is_scannable(entry.path().string()))
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

std::map<std::string, std::size_t> summarize(
    const std::vector<Finding>& all) {
  std::map<std::string, std::size_t> counts;
  for (const RuleInfo& r : kRules) counts[r.id] = 0;
  for (const Finding& f : all) ++counts[info(f.rule).id];
  return counts;
}

}  // namespace billcap::lint
