#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>

namespace billcap::lint {

namespace {

// ---- rule catalogue --------------------------------------------------------

constexpr std::array<RuleInfo, kRuleCount> kRules = {{
    {Rule::kWallClock, "BL001", "wall-clock",
     "wall-clock time and ambient PRNGs make a resumed month diverge from "
     "an uninterrupted one"},
    {Rule::kUnorderedIter, "BL002", "unordered-iter",
     "unordered container iteration order is unspecified and must never "
     "feed serialized output"},
    {Rule::kFloatFormat, "BL003", "float-format",
     "floating output without explicit precision depends on library "
     "defaults and silently loses bits"},
    {Rule::kExitCode, "BL010", "exit-code",
     "the exit-code protocol lives in core::ExitCode; scattered literals "
     "drift"},
    {Rule::kJournalKey, "BL011", "journal-key",
     "journal keys live in src/core/checkpoint_keys.hpp; a typo'd raw key "
     "silently drops state on resume"},
    {Rule::kRawWrite, "BL012", "raw-write",
     "durable writes must go through the atomic temp+rename path "
     "(util::Journal / util::CsvWriter)"},
    {Rule::kCatchAll, "BL020", "catch-all",
     "a swallowed exception must tag a FailureReason or rethrow; silence "
     "hides degradation"},
    {Rule::kTodoIssue, "BL021", "todo-issue",
     "a TODO/FIXME without an issue reference (#N) is untracked debt"},
    {Rule::kUnboundedQueue, "BL022", "unbounded-queue",
     "a container growing inside a loop with no visible bound is an OOM "
     "under overload; serving-path buffers must be capacity-checked"},
    {Rule::kSolveAlloc, "BL023", "solve-alloc",
     "the lp solver's loops must not touch the heap — the arena is sized "
     "before iteration starts; reserve up front or annotate "
     "allow(solve-alloc)"},
    {Rule::kParallelReduce, "BL024", "parallel-reduce",
     "a reduction whose order depends on thread scheduling (accumulating "
     "under a mutex, atomic adds on floats) breaks bitwise determinism; "
     "write results to indexed slots and fold in a fixed order"},
    {Rule::kFixedPoint, "BL025", "fixed-point",
     "a convergence-driven while loop with no visible iteration cap or "
     "epsilon exit can cycle forever (a fixed point is a hope, not a "
     "bound); cap the iterations like the market coupler's max_iters"},
    {Rule::kBareAllow, "BL030", "bare-allow",
     "every suppression must say why the hazard is sanctioned"},
    {Rule::kLayering, "BL040", "layering",
     "the layer DAG (util -> {lp,queueing} -> {market,datacenter,workload} "
     "-> core -> serve -> tools) is the architecture; an inverted include "
     "couples a lower layer upward and rots into a cycle"},
    {Rule::kJournalRegistry, "BL041", "journal-key-registry",
     "every journal key written anywhere must be declared in "
     "src/core/checkpoint_keys.hpp; an unregistered key silently drops "
     "state on resume"},
    {Rule::kExitRegistry, "BL042", "exit-code-registry",
     "every process exit code must be a value of core::ExitCode "
     "(src/core/exit_codes.hpp); an unregistered literal is a protocol "
     "the watchdog cannot interpret"},
    {Rule::kUnseededRng, "BL043", "unseeded-rng",
     "an ambient-seeded RNG (std::random_device, rand(), time-seeded "
     "engines) outside test code makes runs unreproducible; seed from "
     "config through util::Rng"},
}};

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c));
}

std::size_t skip_spaces(std::string_view s, std::size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos;
}

/// Calls `fn(identifier, pos)` for every identifier token in `code`.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_word(code[i]) && !is_digit(code[i])) {
      std::size_t j = i;
      while (j < code.size() && is_word(code[j])) ++j;
      fn(code.substr(i, j - i), i);
      i = j;
    } else {
      ++i;
    }
  }
}

bool followed_by_call(std::string_view code, std::size_t end_pos) {
  const std::size_t p = skip_spaces(code, end_pos);
  return p < code.size() && code[p] == '(';
}

// ---- per-rule checks -------------------------------------------------------

/// BL001 tokens that are hazardous on sight (type/namespace names).
constexpr std::string_view kClockTokens[] = {
    "system_clock", "steady_clock",  "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
    "localtime",     "gmtime",       "localtime_r",
    "gmtime_r",      "timespec_get",
};

/// BL001 tokens that are only hazardous as calls (short common words).
constexpr std::string_view kClockCallTokens[] = {
    "rand", "srand", "time", "clock", "drand48", "lrand48", "mrand48",
};

constexpr std::string_view kUnorderedTokens[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

constexpr std::string_view kPrintfTokens[] = {
    "printf", "fprintf", "sprintf", "snprintf",
    "vprintf", "vfprintf", "vsnprintf", "dprintf",
};

constexpr std::string_view kRawWriteCallTokens[] = {"fopen", "freopen"};

constexpr std::string_view kJournalAccessors[] = {
    "set",          "set_u64",        "set_size", "set_double_bits",
    "set_double_list", "get",         "get_u64",  "get_size",
    "get_double_bits", "get_double_list", "has",
};

template <typename Range>
bool contains(const Range& range, std::string_view token) {
  return std::find(std::begin(range), std::end(range), token) !=
         std::end(range);
}

void check_wall_clock(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (contains(kClockTokens, tok) ||
        (contains(kClockCallTokens, tok) &&
         followed_by_call(code, pos + tok.size())))
      hits.push_back("call to '" + std::string(tok) +
                     "' — wall-clock/ambient randomness breaks bitwise "
                     "resume; use the seeded util::Rng or the simulated "
                     "hour, or annotate allow(wall-clock)");
  });
}

void check_unordered(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t) {
    if (contains(kUnorderedTokens, tok)) {
      std::string msg = "'";
      msg += tok;
      msg +=
          "' — iteration order is unspecified and must not feed "
          "serialized output; use std::map/std::set or annotate "
          "allow(unordered-iter)";
      hits.push_back(std::move(msg));
    }
  });
}

/// Flags printf-family float conversions lacking an explicit precision.
void check_float_format(const LineInfo& line, std::vector<std::string>& hits) {
  bool has_printf = false;
  for_each_identifier(line.code, [&](std::string_view tok, std::size_t) {
    has_printf = has_printf || contains(kPrintfTokens, tok);
  });
  if (!has_printf) return;
  const std::string& s = line.strings;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < s.size() && s[j] == '%') {
      i = j;
      continue;
    }
    bool has_precision = false;
    while (j < s.size() &&
           (is_digit(s[j]) || s[j] == '-' || s[j] == '+' || s[j] == ' ' ||
            s[j] == '#' || s[j] == '0' || s[j] == '*' || s[j] == '.' ||
            s[j] == 'h' || s[j] == 'l' || s[j] == 'j' || s[j] == 'z' ||
            s[j] == 't' || s[j] == 'L')) {
      has_precision = has_precision || s[j] == '.';
      ++j;
    }
    if (j < s.size() && !has_precision &&
        (s[j] == 'f' || s[j] == 'F' || s[j] == 'e' || s[j] == 'E' ||
         s[j] == 'g' || s[j] == 'G' || s[j] == 'a' || s[j] == 'A'))
      hits.push_back(
          "float conversion '%" + s.substr(i + 1, j - i) +
          "' without explicit precision — output depends on library "
          "defaults; write an explicit '.<N>' or use util::format_double");
    i = j;
  }
}

void check_exit_code(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    const std::size_t end = pos + tok.size();
    if (tok == "return") {
      std::size_t p = skip_spaces(code, end);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p || digits - p > 3) return;  // exit codes are 0..255
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ';') return;
      const int value = std::stoi(std::string(code.substr(p, digits - p)));
      if (value >= 2)
        hits.push_back("raw exit-code literal " + std::to_string(value) +
                       " — name it in core::ExitCode "
                       "(src/core/exit_codes.hpp)");
    } else if (tok == "exit" || tok == "_exit" || tok == "quick_exit") {
      std::size_t p = skip_spaces(code, end);
      if (p >= code.size() || code[p] != '(') return;
      p = skip_spaces(code, p + 1);
      std::size_t digits = p;
      while (digits < code.size() && is_digit(code[digits])) ++digits;
      if (digits == p) return;
      const std::size_t after = skip_spaces(code, digits);
      if (after >= code.size() || code[after] != ')') return;
      hits.push_back("raw exit-code literal in " + std::string(tok) +
                     "() — name it in core::ExitCode "
                     "(src/core/exit_codes.hpp)");
    }
  });
}

void check_journal_key(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (pos == 0 || code[pos - 1] != '.') return;
    if (!contains(kJournalAccessors, tok)) return;
    std::size_t p = skip_spaces(code, pos + tok.size());
    if (p >= code.size() || code[p] != '(') return;
    p = skip_spaces(code, p + 1);
    if (p < code.size() && code[p] == '"')
      hits.push_back("raw string key in ." + std::string(tok) +
                     "(\"...\") — declare the key in "
                     "src/core/checkpoint_keys.hpp so reads and writes "
                     "cannot drift");
  });
}

void check_raw_write(std::string_view code, std::vector<std::string>& hits) {
  for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
    if (tok == "ofstream") {
      hits.push_back(
          "'ofstream' — raw file write bypasses the atomic temp+rename "
          "path; use util::Journal::save_atomic / util::CsvWriter, or "
          "annotate allow(raw-write)");
    } else if (contains(kRawWriteCallTokens, tok) &&
               followed_by_call(code, pos + tok.size())) {
      hits.push_back("call to '" + std::string(tok) +
                     "' — raw file write bypasses the atomic temp+rename "
                     "path; use util::Journal::save_atomic / "
                     "util::CsvWriter, or annotate allow(raw-write)");
    }
  });
}

/// True when this line's code opens a `catch (...)`.
bool has_catch_all(std::string_view code) {
  for (std::size_t pos = code.find("catch"); pos != std::string_view::npos;
       pos = code.find("catch", pos + 1)) {
    if (pos > 0 && is_word(code[pos - 1])) continue;
    if (pos + 5 < code.size() && is_word(code[pos + 5])) continue;
    std::size_t p = skip_spaces(code, pos + 5);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_spaces(code, p + 1);
    if (code.compare(p, 3, "...") == 0) return true;
  }
  return false;
}

bool catch_block_handles(const std::vector<LineInfo>& lines,
                         std::size_t start) {
  // Look a few lines into the handler for a rethrow or a FailureReason
  // tag; billcap-audit is a lexer, not a parser, so the window is bounded.
  constexpr std::size_t kWindow = 8;
  for (std::size_t n = start; n < lines.size() && n < start + kWindow; ++n) {
    bool handled = false;
    for_each_identifier(lines[n].code, [&](std::string_view tok, std::size_t) {
      handled = handled || tok == "throw" || tok == "FailureReason";
    });
    if (handled) return true;
  }
  return false;
}

void check_todo(std::string_view comment, std::vector<std::string>& hits) {
  const bool todo = comment.find("TODO") != std::string_view::npos ||
                    comment.find("FIXME") != std::string_view::npos;
  if (!todo) return;
  for (std::size_t i = 0; i + 1 < comment.size(); ++i)
    if (comment[i] == '#' && is_digit(comment[i + 1])) return;
  hits.push_back(
      "TODO/FIXME without an issue reference — add '(#<issue>)' or do it "
      "now");
}

// ---- token-stream loop extraction (BL022 / BL023 / BL025) ------------------
//
// The loop rules used to re-lex each `while`/`for` header and body with
// ad-hoc per-line cursors; they now share one extractor over the token
// stream. A loop is its keyword token, its condition token range (inside
// the matched parens) and its body token range (a matched brace block, or
// up to the terminating ';' for a single-statement body). Windows are
// still hard-capped by *line distance* so a brace imbalance in unparsable
// code cannot make the scan quadratic — the same bias as before: the
// cheap direction is trusting the loop.

constexpr std::size_t kHeaderWindowLines = 6;
constexpr std::size_t kBodyWindowLines = 96;

struct Loop {
  std::size_t keyword = 0;     ///< token index of `while` / `for`
  std::size_t cond_begin = 0;  ///< first token inside the parens
  std::size_t cond_end = 0;    ///< one past the last condition token
  std::size_t body_begin = 0;  ///< first body token
  std::size_t body_end = 0;    ///< one past the last body token (capped)
};

/// Extracts the loop starting at token `kw`; false when the header never
/// closes within the window.
bool extract_loop(const std::vector<Token>& toks, std::size_t kw, Loop& out) {
  const std::size_t open = find_punct(toks, kw + 1, "(");
  if (open >= toks.size() ||
      toks[open].line > toks[kw].line + kHeaderWindowLines)
    return false;
  const std::size_t close = match_forward(toks, open);
  if (close >= toks.size() ||
      toks[close].line > toks[kw].line + kHeaderWindowLines)
    return false;
  out.keyword = kw;
  out.cond_begin = open + 1;
  out.cond_end = close;
  out.body_begin = close + 1;
  if (out.body_begin >= toks.size()) return false;

  const std::size_t limit_line = toks[close].line + kBodyWindowLines;
  if (toks[out.body_begin].kind == TokKind::kPunct &&
      toks[out.body_begin].text == "{") {
    std::size_t end = match_forward(toks, out.body_begin);
    if (end >= toks.size()) end = toks.size() - 1;
    out.body_end = end + 1;
  } else {
    std::size_t end = find_punct(toks, out.body_begin, ";");
    if (end >= toks.size()) end = toks.size() - 1;
    out.body_end = end + 1;
  }
  // Hard cap by line distance.
  while (out.body_end > out.body_begin &&
         toks[out.body_end - 1].line > limit_line)
    --out.body_end;
  return true;
}

/// True when the token range contains a comparison operator: '<', '>' or
/// a '!='/'==' pair (the lexer emits single-char puncts, so the pair is
/// two adjacent tokens).
bool range_has_comparison(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "<" || toks[i].text == ">") return true;
    if (toks[i].text == "=" && i > begin && toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "!" || toks[i - 1].text == "="))
      return true;
  }
  return false;
}

/// True when `toks[i]` is an identifier preceded by '.' or '->' (the lexer
/// emits '-' '>' separately, so '>' suffices) and followed by '('.
bool is_member_call(const std::vector<Token>& toks, std::size_t i) {
  if (toks[i].kind != TokKind::kIdentifier) return false;
  if (i == 0 || toks[i - 1].kind != TokKind::kPunct ||
      (toks[i - 1].text != "." && toks[i - 1].text != ">"))
    return false;
  return i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
         toks[i + 1].text == "(";
}

bool is_call(const std::vector<Token>& toks, std::size_t i) {
  return toks[i].kind == TokKind::kIdentifier && i + 1 < toks.size() &&
         toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "(";
}

// ---- BL022 unbounded queue -------------------------------------------------
//
// Only `while` loops are examined (the overload-risk shape — `for` loops
// carry their bound in the header), a loop whose condition shows any
// bounding evidence is trusted, and one capacity check anywhere in the
// body sanctions every growth call in it.

constexpr std::string_view kGrowthCalls[] = {
    "push_back", "emplace_back", "push", "emplace", "push_front",
    "emplace_front", "append",
};

/// Tokens whose presence in a loop body shows the growth is accounted
/// for: a capacity/size check, a matching consumer, or a loop escape.
constexpr std::string_view kCapacityEvidence[] = {
    "size",  "capacity", "full",  "empty", "reserve", "resize",
    "pop",   "pop_back", "pop_front", "drop", "drain", "take",
    "erase", "clear",    "break",
};

/// A while condition is bounded when it compares against a limit, tests a
/// container's state, or extracts from a stream (EOF-bounded). '<' and '>'
/// also cover stream extraction and shifts — over-trusting the condition
/// is the cheap direction; the rule exists to catch `while (true)` and
/// bare-flag spins that buffer without a cap.
bool while_condition_bounded(const std::vector<Token>& toks,
                             const Loop& loop) {
  if (range_has_comparison(toks, loop.cond_begin, loop.cond_end)) return true;
  for (std::size_t i = loop.cond_begin; i < loop.cond_end; ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t == "size" || t == "empty" || t == "capacity" || t == "full" ||
        t == "getline")
      return true;
  }
  return false;
}

struct LoopGrowth {
  std::size_t line = 0;  ///< 0-based line of the growth call
  std::string call;
};

/// BL022 pass over the whole translation unit.
std::vector<LoopGrowth> check_unbounded_queues(const SourceFile& sf) {
  const std::vector<Token>& toks = sf.tokens;
  std::vector<LoopGrowth> growths;
  for (std::size_t n = 0; n < toks.size(); ++n) {
    if (toks[n].kind != TokKind::kIdentifier || toks[n].text != "while")
      continue;
    Loop loop;
    if (!extract_loop(toks, n, loop)) continue;
    if (while_condition_bounded(toks, loop)) continue;
    bool evidence = false;
    std::vector<LoopGrowth> local;
    for (std::size_t i = loop.body_begin; i < loop.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      if (contains(kCapacityEvidence, toks[i].text)) evidence = true;
      if (contains(kGrowthCalls, toks[i].text) && is_member_call(toks, i))
        local.push_back({toks[i].line, toks[i].text});
    }
    if (!evidence)
      growths.insert(growths.end(), local.begin(), local.end());
  }
  return growths;
}

// ---- BL025 fixed-point -----------------------------------------------------
//
// The closed-loop coupler's lesson institutionalized: a convergence-driven
// while loop (`while (!converged)`, `while (oscillating)`) can spin forever
// on a period-2 cycle — reaching the fixed point is a hope, not a bound.
// A loop fires only when its condition carries convergence vocabulary AND
// neither the condition nor the (windowed) body shows bounding evidence:
// an epsilon/cap comparison in the condition, an iteration-counter
// identifier, or a loop escape (break/return/throw/goto) in the body.

constexpr std::string_view kConvergenceMarkers[] = {
    "converg", "residual", "oscillat", "fixed_point", "fixpoint", "settle",
};

constexpr std::string_view kIterationMarkers[] = {
    "iter", "round", "attempt", "budget",
};

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool has_any_marker(std::string_view token,
                    std::span<const std::string_view> markers) {
  const std::string low = lowered(token);
  for (const std::string_view m : markers)
    if (low.find(m) != std::string::npos) return true;
  return false;
}

/// BL025 pass over the whole translation unit; returns 0-based lines of
/// unbounded convergence loops.
std::vector<std::size_t> check_fixed_point(const SourceFile& sf) {
  const std::vector<Token>& toks = sf.tokens;
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < toks.size(); ++n) {
    if (toks[n].kind != TokKind::kIdentifier || toks[n].text != "while")
      continue;
    Loop loop;
    if (!extract_loop(toks, n, loop)) continue;
    bool convergence = false;
    bool counter_in_cond = false;
    for (std::size_t i = loop.cond_begin; i < loop.cond_end; ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      convergence =
          convergence || has_any_marker(toks[i].text, kConvergenceMarkers);
      counter_in_cond =
          counter_in_cond || has_any_marker(toks[i].text, kIterationMarkers);
    }
    if (!convergence) continue;
    // An epsilon exit or a cap comparison right in the condition, or an
    // iteration counter driving it alongside the convergence flag.
    if (range_has_comparison(toks, loop.cond_begin, loop.cond_end) ||
        counter_in_cond)
      continue;
    bool bounded = false;
    for (std::size_t i = loop.body_begin; i < loop.body_end && !bounded; ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      const std::string& t = toks[i].text;
      bounded = t == "break" || t == "return" || t == "throw" ||
                t == "goto" || has_any_marker(t, kIterationMarkers);
    }
    if (!bounded) out.push_back(toks[n].line);
  }
  return out;
}

// ---- BL023 solve allocation ------------------------------------------------
//
// The arena solver's contract is an allocation-free steady state: every
// tableau row, basis array and branch-and-bound node lives in storage
// sized before iteration starts. In a translation unit that opens the
// billcap lp namespace, any loop body (`while` or `for` — the simplex
// pivots and the node stack drive both) that calls a raw allocator is
// flagged, and container growth is flagged unless a reserve() sizing
// pass appears on an earlier line of the file. The reserve does not have
// to size the exact container that grows — it is evidence the file has a
// sizing pass, and the differential/property suites are what prove the
// arena correct.

constexpr std::string_view kAllocCalls[] = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc",
};

struct SolveAlloc {
  std::size_t line = 0;  ///< 0-based line of the offending call
  std::string call;
  bool growth = false;   ///< growth call (reserve-sanctionable) vs allocator
};

bool operator<(const SolveAlloc& a, const SolveAlloc& b) {
  return a.line != b.line ? a.line < b.line : a.call < b.call;
}

bool operator==(const SolveAlloc& a, const SolveAlloc& b) {
  return a.line == b.line && a.call == b.call;
}

/// BL023 pass over the whole translation unit. Nested loops scan inner
/// bodies once per enclosing loop, so findings are deduped by position.
std::vector<SolveAlloc> check_solve_alloc(const SourceFile& sf) {
  const std::vector<Token>& toks = sf.tokens;
  std::vector<SolveAlloc> found;
  for (std::size_t n = 0; n < toks.size(); ++n) {
    if (toks[n].kind != TokKind::kIdentifier ||
        (toks[n].text != "while" && toks[n].text != "for"))
      continue;
    Loop loop;
    if (!extract_loop(toks, n, loop)) continue;
    for (std::size_t i = loop.body_begin; i < loop.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      if (toks[i].text == "new") {
        found.push_back({toks[i].line, "new", false});
      } else if (contains(kAllocCalls, toks[i].text) && is_call(toks, i)) {
        found.push_back({toks[i].line, toks[i].text, false});
      } else if (contains(kGrowthCalls, toks[i].text) &&
                 is_member_call(toks, i)) {
        found.push_back({toks[i].line, toks[i].text, true});
      }
    }
  }
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
  return found;
}

// ---- BL024 parallel reduce -------------------------------------------------
//
// Only translation units that visibly touch the worker-pool machinery are
// examined (content-based, like the journal-key gate). Two shapes are
// flagged: a floating-point std::atomic accumulator (including fetch_add,
// whose float overloads reduce in scheduling order), and a `+=` within a
// few lines of a lock construction — the accumulate-under-mutex idiom,
// where the *values* are protected but the fold order still follows thread
// scheduling. The sanctioned shape writes each task's result to its own
// indexed slot and folds serially in index order (see core/fleet.cpp).

struct ParallelReduce {
  std::size_t line = 0;
  std::string what;
};

std::vector<ParallelReduce> check_parallel_reduce(
    const std::vector<LineInfo>& lines) {
  std::vector<ParallelReduce> out;
  // A lock taken a couple of lines above an accumulation still guards it;
  // beyond that the scope has usually ended (billcap-audit is a lexer).
  constexpr std::size_t kLockWindow = 3;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string_view code = lines[n].code;
    bool atomic_float = false;
    bool lock_line = false;
    for_each_identifier(code, [&](std::string_view tok, std::size_t pos) {
      if (tok == "atomic") {
        std::size_t p = skip_spaces(code, pos + tok.size());
        if (p < code.size() && code[p] == '<') {
          p = skip_spaces(code, p + 1);
          const std::string_view rest = code.substr(p);
          atomic_float = atomic_float || rest.starts_with("double") ||
                         rest.starts_with("float");
        }
      }
      if (tok == "fetch_add") out.push_back({n, "fetch_add"});
      lock_line = lock_line || tok == "lock_guard" || tok == "scoped_lock" ||
                  tok == "unique_lock";
    });
    if (atomic_float) out.push_back({n, "atomic floating accumulator"});
    if (lock_line) {
      for (std::size_t m = n + 1;
           m < lines.size() && m <= n + kLockWindow; ++m) {
        if (lines[m].code.find("+=") != std::string_view::npos) {
          out.push_back({m, "accumulation under a lock"});
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace

// ---- public API ------------------------------------------------------------

const std::array<RuleInfo, kRuleCount>& rule_table() { return kRules; }

const RuleInfo& info(Rule rule) {
  for (const RuleInfo& r : kRules)
    if (r.rule == rule) return r;
  return kRules[0];  // unreachable: every enumerator is in the table
}

const RuleInfo* find_rule(std::string_view name) {
  for (const RuleInfo& r : kRules)
    if (name == r.name) return &r;
  return nullptr;
}

std::string format_finding(const Finding& finding) {
  const RuleInfo& r = info(finding.rule);
  return finding.file + ":" + std::to_string(finding.line) + ": [" + r.id +
         " " + r.name + "] " + finding.message;
}

Suppressions collect_suppressions(std::string_view path,
                                  const SourceFile& source) {
  const std::vector<LineInfo>& lines = source.lines;
  Suppressions out;
  out.allowed.resize(lines.size() + 1);
  constexpr std::string_view kMarker = "billcap-lint:";
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& comment = lines[n].comment;
    std::size_t at = comment.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::size_t pos = comment.find("allow(", at);
    if (pos == std::string_view::npos) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "billcap-lint annotation without an allow(<rule>) clause", {}});
      continue;
    }
    pos += std::string_view("allow(").size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) continue;
    const std::string name = comment.substr(pos, close - pos);
    const RuleInfo* rule = find_rule(name);
    if (rule == nullptr) {
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") names no billcap-lint rule", {}});
      continue;
    }
    // The annotation sanctions this line and the one directly below it, so
    // a whole-line comment can precede the hazard.
    out.allowed[n].insert(rule->rule);
    if (n + 1 < out.allowed.size()) out.allowed[n + 1].insert(rule->rule);
    // Rationale: a ':' after the close paren with real text behind it.
    const std::size_t colon = skip_spaces(comment, close + 1);
    const bool has_rationale =
        colon < comment.size() && comment[colon] == ':' &&
        skip_spaces(comment, colon + 1) < comment.size();
    if (!has_rationale)
      out.bare_allow_findings.push_back(
          {std::string(path), n + 1, Rule::kBareAllow,
           "allow(" + name + ") without a rationale — write 'allow(" + name +
               "): <why this site is sanctioned>'", {}});
  }
  return out;
}

std::vector<Finding> scan_tokens(std::string_view path,
                                 const SourceFile& source) {
  const std::vector<LineInfo>& lines = source.lines;
  Suppressions suppress = collect_suppressions(path, source);

  // Applicability is content-based so fixtures behave like real sources:
  // the exit-code rule guards exit surfaces, the journal-key rule guards
  // translation units that *include* util/journal.hpp. The gates read the
  // lexed includes and token stream, never raw text, so a comment that
  // mentions a header cannot gate a file into a rule.
  const bool exit_surface =
      source.has_code_sequence({"int", "main", "("}) ||
      source.includes_path("core/supervisor.hpp") ||
      source.includes_path("core/exit_codes.hpp");
  const bool journal_user = source.includes_path("util/journal.hpp");
  const bool lp_solver_tu =
      source.has_code_sequence({"namespace", "billcap", "::", "lp"});
  const bool parallel_tu = source.includes_path("util/thread_pool.hpp") ||
                           source.has_identifier("ThreadPool") ||
                           source.has_identifier("parallel_for");

  std::vector<Finding> findings;
  const auto emit = [&](std::size_t n, Rule rule,
                        std::vector<std::string>& hits) {
    if (!suppress.allows(n, rule))
      for (std::string& hit : hits)
        findings.push_back(
            {std::string(path), n + 1, rule, std::move(hit), {}});
    hits.clear();
  };

  std::vector<std::string> hits;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const LineInfo& line = lines[n];
    check_wall_clock(line.code, hits);
    emit(n, Rule::kWallClock, hits);
    check_unordered(line.code, hits);
    emit(n, Rule::kUnorderedIter, hits);
    check_float_format(line, hits);
    emit(n, Rule::kFloatFormat, hits);
    if (exit_surface) {
      check_exit_code(line.code, hits);
      emit(n, Rule::kExitCode, hits);
    }
    if (journal_user) {
      check_journal_key(line.code, hits);
      emit(n, Rule::kJournalKey, hits);
    }
    check_raw_write(line.code, hits);
    emit(n, Rule::kRawWrite, hits);
    if (has_catch_all(line.code) && !catch_block_handles(lines, n)) {
      hits.push_back(
          "catch (...) swallows without tagging a FailureReason or "
          "rethrowing; tag the degradation or annotate allow(catch-all)");
      emit(n, Rule::kCatchAll, hits);
    }
    check_todo(line.comment, hits);
    emit(n, Rule::kTodoIssue, hits);
  }

  for (const LoopGrowth& g : check_unbounded_queues(source)) {
    if (!suppress.allows(g.line, Rule::kUnboundedQueue))
      findings.push_back(
          {std::string(path), g.line + 1, Rule::kUnboundedQueue,
           "'" + g.call +
               "' grows a container inside a while loop with no visible "
               "bound — cap it, drain it, or check capacity before pushing "
               "(the ingest plane's BoundedQueue shape), or annotate "
               "allow(unbounded-queue)", {}});
  }

  for (const std::size_t n : check_fixed_point(source)) {
    if (!suppress.allows(n, Rule::kFixedPoint))
      findings.push_back(
          {std::string(path), n + 1, Rule::kFixedPoint,
           "convergence-driven while loop with no visible iteration cap or "
           "epsilon exit — the loop can cycle forever on a period-2 orbit; "
           "cap the iterations (the market coupler's max_iters shape), "
           "compare against a tolerance in the condition, or annotate "
           "allow(fixed-point)", {}});
  }

  if (lp_solver_tu) {
    // Growth is sanctioned by a reserve() sizing pass on an earlier line;
    // raw allocators in a loop body are flagged unconditionally.
    std::size_t first_reserve = lines.size();
    for (std::size_t i = 0; i < source.tokens.size(); ++i) {
      if (source.tokens[i].text == "reserve" && is_call(source.tokens, i)) {
        first_reserve = source.tokens[i].line;
        break;
      }
    }
    for (const SolveAlloc& a : check_solve_alloc(source)) {
      if (a.growth && first_reserve <= a.line) continue;
      if (suppress.allows(a.line, Rule::kSolveAlloc)) continue;
      findings.push_back(
          {std::string(path), a.line + 1, Rule::kSolveAlloc,
           a.growth
               ? "'" + a.call +
                     "' grows a container inside a solver loop with no "
                     "reserve() sizing pass earlier in the file — size the "
                     "arena before iterating or annotate allow(solve-alloc)"
               : "'" + a.call +
                     "' allocates inside a solver loop — the solver's steady "
                     "state must not touch the heap; move the allocation to "
                     "setup or annotate allow(solve-alloc)", {}});
    }
  }

  if (parallel_tu) {
    for (const ParallelReduce& p : check_parallel_reduce(lines)) {
      if (suppress.allows(p.line, Rule::kParallelReduce)) continue;
      findings.push_back(
          {std::string(path), p.line + 1, Rule::kParallelReduce,
           p.what +
               " reduces in thread-scheduling order, which breaks bitwise "
               "determinism across thread counts — write each task's result "
               "to its own indexed slot and fold serially in index order, "
               "or annotate allow(parallel-reduce)", {}});
    }
  }

  for (Finding& f : suppress.bare_allow_findings)
    findings.push_back(std::move(f));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line
                                      : info(a.rule).id < info(b.rule).id;
            });
  return findings;
}

std::vector<Finding> scan_source(std::string_view path,
                                 std::string_view text) {
  return scan_tokens(path, tokenize(text));
}

SourceFile load_source(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("billcap-audit: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return tokenize(buffer.str());
}

std::vector<Finding> scan_file(const std::string& path) {
  return scan_tokens(path, load_source(path));
}

bool is_scannable(std::string_view path) {
  for (std::string_view ext : {".cpp", ".cc", ".hpp", ".h"})
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
      return true;
  return false;
}

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const fs::path p(root);
  if (fs::is_regular_file(p)) {
    if (is_scannable(root)) files.push_back(root);
    return files;
  }
  if (!fs::is_directory(p))
    throw std::runtime_error("billcap-audit: no such file or directory: " +
                             root);
  for (const auto& entry : fs::recursive_directory_iterator(p))
    if (entry.is_regular_file() && is_scannable(entry.path().string()))
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

std::map<std::string, std::size_t> summarize(
    const std::vector<Finding>& all) {
  std::map<std::string, std::size_t> counts;
  for (const RuleInfo& r : kRules) counts[r.id] = 0;
  for (const Finding& f : all) ++counts[info(f.rule).id];
  return counts;
}

}  // namespace billcap::lint
