#include "tokens.hpp"

#include <cctype>

namespace billcap::lint {

namespace {

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c));
}

/// Recognizes `#include <path>` / `#include "path"` on the raw line the
/// directive starts on. Runs on the code channel, so a commented-out
/// include or one quoted inside a string never becomes an edge.
void scan_include(const std::string& code, std::string_view strings,
                  std::size_t line, std::vector<Include>& out) {
  std::size_t i = 0;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  if (i >= code.size() || code[i] != '#') return;
  ++i;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  constexpr std::string_view kInclude = "include";
  if (code.compare(i, kInclude.size(), kInclude) != 0) return;
  i += kInclude.size();
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  if (i >= code.size()) return;
  if (code[i] == '<') {
    const std::size_t close = code.find('>', i + 1);
    if (close != std::string::npos)
      out.push_back({code.substr(i + 1, close - i - 1), true, line});
  } else if (code[i] == '"') {
    // The quoted path's *contents* were routed to the strings channel by
    // the lexer; on an include line the only string is the path.
    out.push_back({std::string(strings), false, line});
  }
}

}  // namespace

bool SourceFile::has_code_sequence(
    std::initializer_list<std::string_view> words) const {
  if (words.size() == 0) return true;
  for (std::size_t i = 0; i + words.size() <= tokens.size(); ++i) {
    std::size_t j = i;
    bool all = true;
    for (const std::string_view w : words) {
      if (j >= tokens.size() || tokens[j].text != w) {
        all = false;
        break;
      }
      ++j;
    }
    if (all) return true;
  }
  return false;
}

bool SourceFile::includes_path(std::string_view path) const {
  for (const Include& inc : includes)
    if (inc.path == path) return true;
  return false;
}

bool SourceFile::has_identifier(std::string_view ident) const {
  for (const Token& t : tokens)
    if (t.kind == TokKind::kIdentifier && t.text == ident) return true;
  return false;
}

SourceFile tokenize(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  SourceFile out;
  LineInfo current;
  State state = State::kCode;
  std::string raw_end;     // ")delim\"" terminator of an active raw string
  std::size_t line = 0;
  Token pending;           // string/char literal being accumulated
  bool multi_punct = false;  // "::" is the one multi-char punct we fuse

  auto flush_line = [&] {
    scan_include(current.code, current.strings, line, out.includes);
    out.lines.push_back(std::move(current));
    current = LineInfo{};
    ++line;
  };

  auto push_code = [&](char c) {
    const std::size_t col = current.code.size();
    current.code.push_back(c);
    if (is_word(c)) {
      Token* last = out.tokens.empty() ? nullptr : &out.tokens.back();
      const bool continues =
          last != nullptr && last->line == line &&
          (last->kind == TokKind::kIdentifier ||
           last->kind == TokKind::kNumber) &&
          last->col + last->text.size() == col;
      if (continues) {
        out.tokens.back().text.push_back(c);
        // "123abc" stays a number token: rules only ever match identifier
        // names or whole numbers, so the loose lexing is harmless.
      } else {
        out.tokens.push_back({is_digit(c) ? TokKind::kNumber
                                          : TokKind::kIdentifier,
                              std::string(1, c), line, col});
      }
      multi_punct = false;
    } else if (c == ':' && multi_punct && !out.tokens.empty() &&
               out.tokens.back().text == ":" && out.tokens.back().line == line &&
               out.tokens.back().col + 1 == col) {
      out.tokens.back().text = "::";
      multi_punct = false;
    } else if (c != ' ' && c != '\t') {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line, col});
      multi_punct = c == ':';
    } else {
      multi_punct = false;
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      if (state == State::kString || state == State::kChar) {
        // Unterminated sane literal: close it at the newline.
        out.tokens.push_back(std::move(pending));
        pending = Token{};
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          const bool raw = !current.code.empty() &&
                           current.code.back() == 'R' &&
                           (current.code.size() < 2 ||
                            !is_word(current.code[current.code.size() - 2]));
          pending = {TokKind::kString, "", line, current.code.size()};
          current.code.push_back('"');
          if (!current.strings.empty()) current.strings.push_back(' ');
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n')
              delim.push_back(text[j++]);
            raw_end = ")" + delim + "\"";
            i = j;  // consume up to and including '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of a number, not a char
          // literal opener.
          if (!out.tokens.empty() &&
              out.tokens.back().kind == TokKind::kNumber &&
              out.tokens.back().line == line &&
              out.tokens.back().col + out.tokens.back().text.size() ==
                  current.code.size() &&
              i + 1 < text.size() && is_digit(text[i + 1])) {
            // Keep the separator in the token so "1'000'000" stays one
            // number and the column arithmetic above keeps extending it.
            out.tokens.back().text.push_back('\'');
            current.code.push_back('\'');
            break;
          }
          pending = {TokKind::kCharLit, "", line, current.code.size()};
          current.code.push_back('\'');
          state = State::kChar;
        } else {
          push_code(c);
        }
        break;
      }
      case State::kLineComment:
        current.comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < text.size()) {
          current.strings.push_back(text[++i]);
          pending.text.push_back(text[i]);
        } else if (c == '"') {
          current.code.push_back('"');
          out.tokens.push_back(std::move(pending));
          pending = Token{};
          state = State::kCode;
        } else {
          current.strings.push_back(c);
          pending.text.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size()) {
          pending.text.push_back(text[++i]);
        } else if (c == '\'') {
          current.code.push_back('\'');
          out.tokens.push_back(std::move(pending));
          pending = Token{};
          state = State::kCode;
        } else {
          pending.text.push_back(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          current.code.push_back('"');
          out.tokens.push_back(std::move(pending));
          pending = Token{};
          state = State::kCode;
        } else {
          current.strings.push_back(c);
          pending.text.push_back(c);
        }
        break;
    }
  }
  if (state == State::kString || state == State::kChar ||
      state == State::kRawString)
    out.tokens.push_back(std::move(pending));
  flush_line();
  return out;
}

std::size_t find_punct(const std::vector<Token>& tokens, std::size_t from,
                       std::string_view punct) {
  for (std::size_t i = from; i < tokens.size(); ++i)
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == punct) return i;
  return tokens.size();
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::kPunct)
    return tokens.size();
  const std::string& o = tokens[open].text;
  const char close = o == "(" ? ')' : o == "{" ? '}' : o == "[" ? ']' : '\0';
  if (close == '\0') return tokens.size();
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct || tokens[i].text.size() != 1)
      continue;
    if (tokens[i].text[0] == o[0]) ++depth;
    if (tokens[i].text[0] == close && --depth == 0) return i;
  }
  return tokens.size();
}

}  // namespace billcap::lint
