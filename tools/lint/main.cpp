// billcap-lint — project-specific static analysis for the bill-capping
// controller (see lint.hpp for the rule catalogue and rationale).
//
//   billcap-lint [--summary] [--expect <rule-name>] [--list-rules] PATH...
//
// PATH arguments are files or directories (recursed for .cpp/.cc/.hpp/.h).
// Default mode prints every unsuppressed finding as "file:line: [ID name]
// message" and fails when any exists. --expect <rule-name> is fixture
// mode: succeed only when at least one finding fired and every finding is
// the named rule. --summary appends a per-rule count table.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using namespace billcap::lint;

// The lint tool's own exit protocol (it is a dev tool, not a controller,
// so it does not share core::ExitCode).
constexpr int kCleanExit = 0;
constexpr int kFindingsExit = 1;
constexpr int kUsageExit = 2;

int list_rules() {
  std::printf("%-7s %-15s %s\n", "id", "name", "rationale");
  for (const RuleInfo& r : rule_table())
    std::printf("%-7s %-15s %s\n", r.id, r.name, r.rationale);
  return kCleanExit;
}

void print_summary(const std::vector<Finding>& findings,
                   std::size_t files_scanned) {
  std::printf("\nbillcap-lint summary (%zu files scanned)\n", files_scanned);
  std::printf("  %-7s %-15s %s\n", "rule", "name", "findings");
  const auto counts = summarize(findings);
  for (const RuleInfo& r : rule_table())
    std::printf("  %-7s %-15s %zu\n", r.id, r.name, counts.at(r.id));
  std::printf("  total unsuppressed findings: %zu\n", findings.size());
}

int usage(const char* error) {
  std::fprintf(stderr,
               "billcap-lint: %s\n"
               "usage: billcap-lint [--summary] [--expect <rule-name>] "
               "[--list-rules] PATH...\n",
               error);
  return kUsageExit;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  std::string expect;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary") {
      summary = true;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--expect") {
      if (i + 1 >= argc) return usage("--expect needs a rule name");
      expect = argv[++i];
      if (find_rule(expect) == nullptr)
        return usage(("unknown rule '" + expect + "'").c_str());
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown flag '" + arg + "'").c_str());
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage("no paths given");

  try {
    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    for (const std::string& root : roots) {
      for (const std::string& file : collect_sources(root)) {
        ++files_scanned;
        for (Finding& f : scan_file(file)) findings.push_back(std::move(f));
      }
    }
    for (const Finding& f : findings)
      std::printf("%s\n", format_finding(f).c_str());
    if (summary) print_summary(findings, files_scanned);

    if (!expect.empty()) {
      // Fixture mode: the file must trigger its intended rule and nothing
      // else, so golden fixtures pin each rule exactly.
      const RuleInfo* want = find_rule(expect);
      if (findings.empty()) {
        std::fprintf(stderr, "billcap-lint: expected at least one %s (%s)\n",
                     want->id, want->name);
        return kFindingsExit;
      }
      for (const Finding& f : findings)
        if (f.rule != want->rule) {
          std::fprintf(stderr, "billcap-lint: expected only %s, got %s\n",
                       want->id, info(f.rule).id);
          return kFindingsExit;
        }
      return kCleanExit;
    }
    return findings.empty() ? kCleanExit : kFindingsExit;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "billcap-lint: %s\n", e.what());
    return kUsageExit;
  }
}
