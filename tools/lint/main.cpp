// billcap-audit — project-specific static analysis for the bill-capping
// controller (see lint.hpp for the per-file rules, audit.hpp for the
// cross-file rules and rationale).
//
//   billcap-audit [--summary] [--expect <rule-name>] [--list-rules]
//                 [--json <path|->] [--baseline <path>]
//                 [--write-baseline <path>] PATH...
//
// PATH arguments are files or directories (recursed for .cpp/.cc/.hpp/.h).
// Default mode runs both passes — per-file rules plus the cross-file
// layering/registry/RNG audit — prints every unsuppressed finding as
// "file:line: [ID name] message" and fails when any exists.
//
//   --expect <rule-name>   fixture mode: succeed only when at least one
//                          finding fired and every finding is the named rule
//   --summary              append a per-rule count table
//   --json <path|->        write the machine-readable report (archived by
//                          CI next to the BENCH_*.json artifacts)
//   --baseline <path>      ratchet: findings listed in the baseline warn,
//                          anything new fails
//   --write-baseline <path> write the current findings as a baseline
//
// Paths are reported exactly as given, and baseline keys are built from
// them — run the audit from the repo root with relative paths so baselines
// travel across machines.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit.hpp"
#include "lint.hpp"

namespace {

using namespace billcap::lint;

// The audit tool's own exit protocol (it is a dev tool, not a controller,
// so it does not share core::ExitCode).
constexpr int kCleanExit = 0;
constexpr int kFindingsExit = 1;
constexpr int kUsageExit = 2;

int list_rules() {
  std::printf("%-7s %-20s %s\n", "id", "name", "rationale");
  for (const RuleInfo& r : rule_table())
    std::printf("%-7s %-20s %s\n", r.id, r.name, r.rationale);
  return kCleanExit;
}

void print_summary(const AuditResult& result) {
  std::printf("\nbillcap-audit summary (%zu files scanned)\n",
              result.files_scanned);
  std::printf("  %-7s %-20s %s\n", "rule", "name", "findings");
  const auto counts = summarize(result.findings);
  for (const RuleInfo& r : rule_table())
    std::printf("  %-7s %-20s %zu\n", r.id, r.name, counts.at(r.id));
  std::printf("  total unsuppressed findings: %zu\n",
              result.findings.size());
}

int usage(const char* error) {
  std::fprintf(stderr,
               "billcap-audit: %s\n"
               "usage: billcap-audit [--summary] [--expect <rule-name>] "
               "[--list-rules] [--json <path|->] [--baseline <path>] "
               "[--write-baseline <path>] PATH...\n",
               error);
  return kUsageExit;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("billcap-audit: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  // billcap-lint: allow(raw-write): dev-tool report output; a torn write is re-run, never resumed from
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("billcap-audit: cannot write " + path);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  std::string expect;
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--summary") {
      summary = true;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--expect") {
      const char* value = flag_value("--expect");
      if (value == nullptr) return usage("--expect needs a rule name");
      expect = value;
      if (find_rule(expect) == nullptr)
        return usage(("unknown rule '" + expect + "'").c_str());
    } else if (arg == "--json") {
      const char* value = flag_value("--json");
      if (value == nullptr) return usage("--json needs a path (or -)");
      json_path = value;
    } else if (arg == "--baseline") {
      const char* value = flag_value("--baseline");
      if (value == nullptr) return usage("--baseline needs a path");
      baseline_path = value;
    } else if (arg == "--write-baseline") {
      const char* value = flag_value("--write-baseline");
      if (value == nullptr) return usage("--write-baseline needs a path");
      write_baseline_path = value;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown flag '" + arg + "'").c_str());
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage("no paths given");

  try {
    const AuditResult result = audit_paths(roots);

    std::set<std::string> baseline;
    if (!baseline_path.empty())
      baseline = parse_baseline(read_file(baseline_path));

    std::size_t grandfathered = 0;
    for (const Finding& f : result.findings) {
      const bool old = baseline.count(baseline_key(f)) != 0;
      grandfathered += old ? 1 : 0;
      std::printf("%s%s\n", format_finding(f).c_str(),
                  old ? " [baseline]" : "");
    }
    if (summary) print_summary(result);

    if (!json_path.empty()) {
      const std::string json = to_json(result, baseline);
      if (json_path == "-")
        std::fputs(json.c_str(), stdout);
      else
        write_file(json_path, json);
    }
    if (!write_baseline_path.empty())
      write_file(write_baseline_path, serialize_baseline(result));

    if (!expect.empty()) {
      // Fixture mode: the file must trigger its intended rule and nothing
      // else, so golden fixtures pin each rule exactly.
      const RuleInfo* want = find_rule(expect);
      if (result.findings.empty()) {
        std::fprintf(stderr, "billcap-audit: expected at least one %s (%s)\n",
                     want->id, want->name);
        return kFindingsExit;
      }
      for (const Finding& f : result.findings)
        if (f.rule != want->rule) {
          std::fprintf(stderr, "billcap-audit: expected only %s, got %s\n",
                       want->id, info(f.rule).id);
          return kFindingsExit;
        }
      return kCleanExit;
    }
    const std::size_t fresh = result.findings.size() - grandfathered;
    if (grandfathered > 0)
      std::printf("billcap-audit: %zu grandfathered finding(s) tolerated by "
                  "the baseline\n",
                  grandfathered);
    return fresh == 0 ? kCleanExit : kFindingsExit;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "billcap-audit: %s\n", e.what());
    return kUsageExit;
  }
}
