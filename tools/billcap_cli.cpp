// billcap — command-line front end to the library.
//
//   billcap simulate   [--budget $] [--policy 0..3] [--strategy name]
//                      [--seed N] [--no-cap] [--csv path]
//                      [--outages s:start:dur,...] [--stale start:dur,...]
//                      [--shocks s:start:dur:mult,...]
//                      [--squeezes start:dur:ms,...] [--deadline-ms X]
//                      [--fault-outage-rate p] [--fault-stale-rate p]
//                      [--fault-shock-rate p] [--fault-squeeze-rate p]
//                      [--fault-*-mean H] [--crash-rate p] [--crash-at h,..]
//                      [--feed-retry-prob p] [--feed-max-retries N]
//                      [--checkpoint path] [--resume]
//                      [--keep-generations K] [--die-on-crash]
//                      [--exit-storm h:n,...] [--corrupt-checkpoint-at h,..]
//                      [--standby [--standby-hours N]]
//                      [--min-premium r]
//                      [--closed-loop [--coupler-max-iters N]
//                       [--coupler-gain G] [--damping off|ladder|full]
//                       [--coupler-open-plan]]
//                      [--line-outage l:start:dur,...]
//                      [--bg-shock bus:start:dur:mult,...]
//                      [--congestion-spike l:start:dur:factor,...]
//   billcap serve      [simulate config/fault flags...]
//                      [--ticks-per-hour T] [--hours H]
//                      [--premium-queue-ticks Q] [--ordinary-queue-ticks Q]
//                      [--feed-queue N] [--feed-drain N] [--stale-ticks N]
//                      [--breaker-trip N] [--breaker-cooldown N]
//                      [--replan-nodes N] [--replan-deadline-ms X]
//                      [--kill-at-ticks t,...] [--die-on-kill]
//                      [--checkpoint path] [--resume]
//                      [--keep-generations K] [--csv path]
//                      [--standby [--standby-hours N]]
//   billcap supervise  --checkpoint path [--serve] [child flags...]
//                      [--restart-budget N] [--restart-window-s S]
//                      [--backoff-ms B] [--backoff-multiplier M]
//                      [--backoff-max-ms X] [--backoff-jitter J]
//                      [--escalate-after N] [--standby-hours H]
//                      [--keep-generations K]
//   billcap sweep      [--budgets a,b,c] [--policy 0..3] [--seed N]
//   billcap opf        [--load MW]
//   billcap trace      [--seed N]
//   billcap help
//
// Every command prints human-readable tables; `simulate --csv` dumps the
// hourly records for plotting.
//
// Exit codes:
//   0  success
//   1  runtime error (I/O failure, no viable checkpoint, internal error)
//   2  usage error (unknown command, unparseable or out-of-range flag)
//   3  unrecoverable degradation (the premium QoS guarantee was broken)
//   4  graceful stop (SIGTERM/SIGINT, or a standby attempt's chunk done)
//   5  the supervisor gave up (restart budget exhausted)

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/checkpoint.hpp"
#include "core/exit_codes.hpp"
#include "core/simulator.hpp"
#include "core/supervisor.hpp"
#include "serve/serve_loop.hpp"
#include "market/dcopf.hpp"
#include "market/pjm5.hpp"
#include "market/policy_derivation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"
#include "workload/wiki_synth.hpp"

namespace {

using namespace billcap;

core::Strategy parse_strategy(const std::string& name) {
  if (name == "costcapping") return core::Strategy::kCostCapping;
  if (name == "minonly-avg") return core::Strategy::kMinOnlyAvg;
  if (name == "minonly-low") return core::Strategy::kMinOnlyLow;
  throw util::UsageError(
      "--strategy: expected costcapping | minonly-avg | minonly-low");
}

/// Splits "a:b:c,d:e:f" into rows of numeric fields; every row must have
/// exactly `fields` entries, all finite and non-negative (fault schedules
/// have no meaningful negative field). Malformed specs are usage errors.
std::vector<std::vector<double>> parse_tuples(const std::string& spec,
                                              std::size_t fields,
                                              const std::string& flag) {
  std::vector<std::vector<double>> rows;
  std::stringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    if (item.empty()) continue;
    std::vector<double> row;
    std::stringstream tuple(item);
    std::string field;
    while (std::getline(tuple, field, ':')) {
      try {
        row.push_back(std::stod(field));
      } catch (const std::exception&) {
        throw util::UsageError("--" + flag + ": bad number '" + field +
                               "' in '" + item + "'");
      }
    }
    if (row.size() != fields)
      throw util::UsageError("--" + flag + ": expected " +
                             std::to_string(fields) +
                             " colon-separated fields, got '" + item + "'");
    for (double v : row)
      if (!std::isfinite(v) || v < 0.0)
        throw util::UsageError("--" + flag +
                               ": fields must be finite and >= 0, got '" +
                               item + "'");
    rows.push_back(std::move(row));
  }
  return rows;
}

/// A fault interval of zero hours is almost always a typo that silently
/// injects nothing; reject it loudly.
void require_duration(double hours, const std::string& flag,
                      const std::string& item_desc) {
  if (hours < 1.0)
    throw util::UsageError("--" + flag + ": duration must be >= 1 hour" +
                           item_desc);
}

/// Builds the fault schedule from the CLI flags: explicit interval flags
/// populate a FaultPlan, rate flags populate FaultRates (the simulator
/// draws the plan from the seed). Degenerate values — negative or NaN
/// rates, zero mean durations, non-positive deadlines — are rejected with
/// a UsageError (exit 2) instead of generating a broken plan.
void parse_faults(const util::CliArgs& args, core::SimulationConfig& config) {
  for (const auto& t :
       parse_tuples(args.get("outages"), 3, "outages")) {
    require_duration(t[2], "outages", "");
    config.fault_plan.outages.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2])});
  }
  for (const auto& t : parse_tuples(args.get("stale"), 2, "stale")) {
    require_duration(t[1], "stale", "");
    config.fault_plan.stale_intervals.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1])});
  }
  for (const auto& t : parse_tuples(args.get("shocks"), 4, "shocks")) {
    require_duration(t[2], "shocks", "");
    if (t[3] <= 0.0)
      throw util::UsageError("--shocks: multiplier must be > 0");
    config.fault_plan.demand_shocks.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2]), t[3]});
  }
  for (const auto& t : parse_tuples(args.get("squeezes"), 3, "squeezes")) {
    require_duration(t[1], "squeezes", "");
    if (t[2] <= 0.0)
      throw util::UsageError("--squeezes: time limit must be > 0 ms");
    config.fault_plan.deadline_squeezes.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         t[2]});
  }
  for (const auto& t : parse_tuples(args.get("crash-at"), 1, "crash-at"))
    config.fault_plan.crashes.push_back(
        {static_cast<std::size_t>(t[0]), false});
  for (const auto& t : parse_tuples(args.get("exit-storm"), 2, "exit-storm")) {
    if (t[1] < 1.0)
      throw util::UsageError("--exit-storm: death count must be >= 1");
    config.fault_plan.exit_storms.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1])});
  }
  for (const auto& t : parse_tuples(args.get("corrupt-checkpoint-at"), 1,
                                    "corrupt-checkpoint-at"))
    config.fault_plan.checkpoint_corruptions.push_back(
        {static_cast<std::size_t>(t[0])});
  for (const auto& t :
       parse_tuples(args.get("flash-crowds"), 3, "flash-crowds")) {
    require_duration(t[1], "flash-crowds", "");
    if (t[2] <= 0.0)
      throw util::UsageError("--flash-crowds: multiplier must be > 0");
    config.fault_plan.flash_crowds.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         t[2]});
  }
  for (const auto& t :
       parse_tuples(args.get("feed-bursts"), 3, "feed-bursts")) {
    require_duration(t[1], "feed-bursts", "");
    if (t[2] < 1.0)
      throw util::UsageError("--feed-bursts: updates per tick must be >= 1");
    config.fault_plan.feed_bursts.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2])});
  }
  // Grid-side hazards (bite the closed-loop coupler; legacy static-curve
  // months ignore them by construction since their prices are fixed).
  for (const auto& t :
       parse_tuples(args.get("line-outage"), 3, "line-outage")) {
    require_duration(t[2], "line-outage", "");
    config.fault_plan.line_outages.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2])});
  }
  for (const auto& t : parse_tuples(args.get("bg-shock"), 4, "bg-shock")) {
    require_duration(t[2], "bg-shock", "");
    if (t[3] <= 0.0)
      throw util::UsageError("--bg-shock: multiplier must be > 0");
    config.fault_plan.grid_demand_shocks.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2]), t[3]});
  }
  for (const auto& t :
       parse_tuples(args.get("congestion-spike"), 4, "congestion-spike")) {
    require_duration(t[2], "congestion-spike", "");
    if (t[3] <= 0.0 || t[3] > 1.0)
      throw util::UsageError(
          "--congestion-spike: limit factor must be in (0, 1]");
    config.fault_plan.congestion_spikes.push_back(
        {static_cast<std::size_t>(t[0]), static_cast<std::size_t>(t[1]),
         static_cast<std::size_t>(t[2]), t[3]});
  }

  config.fault_rates.outage_rate = args.get_prob("fault-outage-rate", 0.0);
  config.fault_rates.stale_rate = args.get_prob("fault-stale-rate", 0.0);
  config.fault_rates.shock_rate = args.get_prob("fault-shock-rate", 0.0);
  config.fault_rates.squeeze_rate = args.get_prob("fault-squeeze-rate", 0.0);
  config.fault_rates.crash_rate = args.get_prob("crash-rate", 0.0);
  config.fault_rates.outage_mean_hours = static_cast<std::size_t>(
      args.get_positive_long("fault-outage-mean", 6));
  config.fault_rates.stale_mean_hours = static_cast<std::size_t>(
      args.get_positive_long("fault-stale-mean", 4));
  config.fault_rates.shock_mean_hours = static_cast<std::size_t>(
      args.get_positive_long("fault-shock-mean", 3));
  config.fault_rates.squeeze_mean_hours = static_cast<std::size_t>(
      args.get_positive_long("fault-squeeze-mean", 2));

  // Market-feed retry policy (0 = legacy frozen feed).
  config.market_feed.retry_success_prob =
      args.get_prob("feed-retry-prob", 0.0);
  config.market_feed.max_attempts_per_hour = static_cast<int>(
      args.get_positive_long("feed-max-retries", 5));
  config.market_feed.base_backoff_ms =
      args.get_positive_double("feed-backoff-ms", 100.0);

  // A solver deadline for every hour of the month (absent = unlimited; an
  // explicit non-positive deadline is degenerate, not "unlimited").
  if (args.has("deadline-ms"))
    config.optimizer.milp.time_limit_ms =
        args.get_positive_double("deadline-ms", 0.0);

  // Hour-over-hour solver warm starts. Like --replan-deadline-ms this
  // trades bitwise kill/resume reproducibility for speed (a resumed run
  // starts with empty solver arenas); within one process results stay
  // deterministic. The flag is mixed into the checkpoint digest so warm
  // and cold trajectories cannot be silently mixed across a resume.
  config.optimizer.warm_hourly_solver = args.get_bool("warm-solver", false);
}

/// Parses the closed-loop coupler flags. --closed-loop turns the coupler
/// on; the other --coupler-* / --damping flags refine it and are usage
/// errors without it (a silent no-op here would fake a closed-loop run).
void parse_coupler(const util::CliArgs& args, core::SimulationConfig& config) {
  config.market_coupler.enabled = args.get_bool("closed-loop", false);
  if (!config.market_coupler.enabled) {
    for (const char* flag :
         {"coupler-max-iters", "coupler-gain", "damping", "coupler-open-plan"})
      if (args.has(flag))
        throw util::UsageError(std::string("--") + flag +
                               " requires --closed-loop");
    return;
  }
  config.market_coupler.loop.max_iters = static_cast<std::size_t>(
      args.get_positive_long("coupler-max-iters", 12));
  config.market_coupler.loop.feedback_gain =
      args.get_positive_double("coupler-gain", 1.0);
  const std::string damping = args.get("damping", "ladder");
  if (damping == "off")
    config.market_coupler.damping = core::DampingMode::kOff;
  else if (damping == "ladder")
    config.market_coupler.damping = core::DampingMode::kLadder;
  else if (damping == "full")
    config.market_coupler.damping = core::DampingMode::kFull;
  else
    throw util::UsageError("--damping: expected off | ladder | full");
  // The open-loop arm of the resilience comparison: coupled billing, but
  // planning stays on the static curves (no feedback iteration).
  config.market_coupler.plan_closed_loop =
      !args.get_bool("coupler-open-plan", false);
}

/// Column set of the per-hour CSV (written whole for plain runs, streamed
/// row-by-row for checkpointed ones). The coupler columns appear only for
/// closed-loop runs, so legacy CSVs stay byte-for-byte identical.
std::vector<std::string> hour_csv_header(bool coupled) {
  std::vector<std::string> cols = {
      "hour", "arrivals", "served_premium", "served_ordinary",
      "hourly_budget", "cost", "mode", "degraded", "failure",
      "sites_down", "stale", "feed_retries", "feed_recovered"};
  if (coupled) {
    cols.insert(cols.end(), {"coupler_iters", "coupler_converged",
                             "coupler_fallback", "coupler_rung"});
  }
  return cols;
}

std::vector<std::string> hour_csv_row(const core::HourRecord& h,
                                      bool coupled) {
  std::vector<std::string> row = {
      std::to_string(h.hour), util::format_double(h.arrivals),
      util::format_double(h.served_premium),
      util::format_double(h.served_ordinary),
      util::format_double(h.hourly_budget),
      util::format_double(h.cost), core::to_string(h.mode),
      h.degraded ? "1" : "0", core::to_string(h.failure),
      std::to_string(h.sites_down), h.stale_prices ? "1" : "0",
      std::to_string(h.feed_attempts), h.feed_recovered ? "1" : "0"};
  if (coupled) {
    row.push_back(std::to_string(h.coupler_iterations));
    row.push_back(h.coupler_converged ? "1" : "0");
    row.push_back(h.coupler_fallback ? "1" : "0");
    row.push_back(std::to_string(h.coupler_rung));
  }
  return row;
}

/// SIGTERM/SIGINT land here during a checkpointed run: the hourly loop
/// finishes the in-flight hour, commits its checkpoint and exits with
/// core::kExitStopped — the supervisor reads that as "do not restart".
volatile std::sig_atomic_t g_stop_requested = 0;
void request_stop(int) { g_stop_requested = 1; }

int cmd_simulate(const util::CliArgs& args) {
  core::SimulationConfig config;
  config.monthly_budget = args.get_positive_double("budget", 1.5e6);
  config.policy_level = static_cast<int>(args.get_long("policy", 1));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 2012));
  config.enforce_budget = !args.get_bool("no-cap", false);
  config.standby = args.get_bool("standby", false);
  parse_faults(args, config);
  parse_coupler(args, config);
  const core::Strategy strategy =
      parse_strategy(args.get("strategy", "costcapping"));
  if (config.market_coupler.enabled &&
      strategy != core::Strategy::kCostCapping)
    throw util::UsageError("--closed-loop is CostCapping only");
  const bool coupled = config.market_coupler.enabled;
  // Below this premium throughput the run counts as an unrecoverable
  // failure: the QoS guarantee was broken (exit code 3).
  const double min_premium = args.get_prob("min-premium", 0.995);

  const std::string checkpoint_path = args.get("checkpoint");
  const bool resume = args.get_bool("resume", false);
  const bool die_on_crash = args.get_bool("die-on-crash", false);
  const auto keep_generations = static_cast<std::size_t>(
      args.get_positive_long("keep-generations", 1));
  if (resume && checkpoint_path.empty())
    throw util::UsageError("--resume requires --checkpoint <path>");
  if (checkpoint_path.empty() && !config.fault_plan.crashes.empty())
    throw util::UsageError("--crash-at requires --checkpoint <path>");
  if (checkpoint_path.empty() && config.fault_rates.crash_rate > 0.0)
    throw util::UsageError("--crash-rate requires --checkpoint <path>");
  if (checkpoint_path.empty() && !config.fault_plan.exit_storms.empty())
    throw util::UsageError("--exit-storm requires --checkpoint <path>");
  if (checkpoint_path.empty() &&
      !config.fault_plan.checkpoint_corruptions.empty())
    throw util::UsageError(
        "--corrupt-checkpoint-at requires --checkpoint <path>");
  if (die_on_crash && checkpoint_path.empty())
    throw util::UsageError("--die-on-crash requires --checkpoint <path>");
  if (args.has("standby-hours") && !config.standby)
    throw util::UsageError("--standby-hours requires --standby");

  const core::Simulator sim(config);

  const long months = args.get_positive_long("months", 1);
  if (months > 1) {
    if (strategy != core::Strategy::kCostCapping)
      throw util::UsageError("--months: multi-month runs are CostCapping only");
    if (!checkpoint_path.empty())
      throw util::UsageError(
          "--checkpoint supports single-month runs only (--months 1)");
    const auto results =
        sim.run_months(static_cast<std::size_t>(months));
    util::Table table({"month", "cost $", "cost/budget", "premium",
                       "ordinary", "degraded h"});
    bool qos_broken = false;
    for (std::size_t m = 0; m < results.size(); ++m) {
      const auto& r = results[m];
      table.add_row({std::to_string(m), util::format_fixed(r.total_cost, 0),
                     util::format_fixed(r.budget_utilization(), 3),
                     util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
                     util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
                     std::to_string(r.degraded_hours)});
      qos_broken = qos_broken || r.premium_throughput_ratio() < min_premium;
    }
    table.print(std::cout);
    if (qos_broken) {
      std::fprintf(stderr,
                   "unrecoverable: premium throughput below %.3f in at "
                   "least one month\n",
                   min_premium);
      return core::kExitQosBroken;
    }
    return core::kExitSuccess;
  }

  const std::string csv_path = args.get("csv");
  core::MonthlyResult r;
  if (!checkpoint_path.empty()) {
    // Crash-tolerant month: every hour is durably checkpointed, the CSV is
    // streamed (and flushed) in lockstep with the checkpoint, and injected
    // controller crashes are survived by resuming in-process.
    std::unique_ptr<util::CsvWriter> writer;
    const auto on_hour = [&](const core::HourRecord& h) {
      if (csv_path.empty()) return;
      // First committed hour of this attempt: keep only the CSV rows the
      // checkpoint vouches for, so a resumed run appends without
      // duplicating hours.
      if (!writer)
        writer = std::make_unique<util::CsvWriter>(
            csv_path, hour_csv_header(coupled), h.hour);
      writer->add_row(hour_csv_row(h, coupled));
    };

    // Honour SIGTERM/SIGINT as a graceful stop: finish the hour, commit
    // the checkpoint, exit with the "do not restart" code.
    g_stop_requested = 0;
    std::signal(SIGTERM, request_stop);
    std::signal(SIGINT, request_stop);

    core::Simulator::ResumeControls controls;
    controls.keep_generations = keep_generations;
    controls.stop_flag = &g_stop_requested;
    if (config.standby)
      controls.max_hours = static_cast<std::size_t>(
          args.get_positive_long("standby-hours", 4));

    const auto report_resume = [&](const core::Simulator::ResumableOutcome& o) {
      for (const auto& skipped : o.resume_skipped)
        std::fprintf(stderr, "checkpoint generation skipped: %s\n",
                     skipped.c_str());
      if (o.resumed_generation > 0)
        std::fprintf(stderr,
                     "resumed from checkpoint generation %zu at hour %zu "
                     "(newer generations unusable)\n",
                     o.resumed_generation, o.resumed_from);
    };

    core::Simulator::ResumableOutcome outcome = sim.run_resumable(
        strategy, checkpoint_path, resume, on_hour, controls);
    report_resume(outcome);
    std::size_t restarts = 0;
    while (outcome.crashed) {
      if (die_on_crash) {
        // Supervised mode: the injected fault must kill the real process
        // (the cursor-advanced checkpoint is already on disk), so the
        // watchdog sees a genuine abnormal death.
        std::fprintf(stderr, "controller crashed at hour %zu; dying\n",
                     outcome.crash_hour);
        std::fflush(nullptr);
#if defined(__unix__) || defined(__APPLE__)
        std::raise(SIGKILL);
#endif
        std::abort();
      }
      ++restarts;
      std::fprintf(stderr,
                   "controller crashed at hour %zu; resuming from %s\n",
                   outcome.crash_hour, checkpoint_path.c_str());
      writer.reset();  // reopen against the post-crash checkpoint state
      outcome = sim.run_resumable(strategy, checkpoint_path, true, on_hour,
                                  controls);
      report_resume(outcome);
    }
    if (outcome.stopped) {
      std::printf("stopped gracefully at hour %zu (checkpoint consistent; "
                  "resume with --resume)\n",
                  outcome.result.hours.size());
      return core::kExitStopped;
    }
    r = std::move(outcome.result);
    if (restarts > 0)
      std::printf("recovered from %zu controller crash(es)\n", restarts);
    if (csv_path.empty()) {
      // nothing streamed
    } else if (writer) {
      std::printf("wrote %s (%zu rows)\n", csv_path.c_str(),
                  writer->num_rows());
    }
  } else {
    r = sim.run(strategy);
  }

  std::printf("strategy %s | policy %d | budget $%.2fM | seed %llu\n",
              core::to_string(strategy), config.policy_level,
              config.monthly_budget / 1e6,
              static_cast<unsigned long long>(config.seed));
  util::Table table({"metric", "value"});
  table.add_row({"monthly cost", "$" + util::format_fixed(r.total_cost, 0)});
  table.add_row({"budget utilization",
                 util::format_fixed(100.0 * r.budget_utilization(), 1) + "%"});
  table.add_row({"premium throughput",
                 util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%"});
  table.add_row({"ordinary throughput",
                 util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%"});
  table.add_row({"max solve time",
                 util::format_fixed(r.max_solve_ms, 2) + " ms"});
  if (sim.fault_injector().enabled() || r.degraded_hours > 0 ||
      config.optimizer.milp.time_limit_ms > 0.0) {
    table.add_row({"degraded hours", std::to_string(r.degraded_hours)});
    table.add_row({"  via incumbent", std::to_string(r.incumbent_hours)});
    table.add_row({"  via heuristic", std::to_string(r.heuristic_hours)});
    table.add_row({"outage hours", std::to_string(r.outage_hours)});
    table.add_row({"stale-feed hours", std::to_string(r.stale_hours)});
  }
  if (config.market_feed.enabled() || r.feed_retry_attempts > 0) {
    table.add_row({"feed retries", std::to_string(r.feed_retry_attempts)});
    table.add_row(
        {"feed recoveries", std::to_string(r.feed_recovered_hours)});
  }
  if (r.crash_recoveries > 0)
    table.add_row({"crash recoveries", std::to_string(r.crash_recoveries)});
  if (coupled) {
    table.add_row({"closed-loop hours", std::to_string(r.closed_loop_hours)});
    table.add_row(
        {"coupler fallback hours", std::to_string(r.coupler_fallback_hours)});
    table.add_row(
        {"oscillation hours",
         std::to_string(r.failure_tally[static_cast<std::size_t>(
             core::FailureReason::kPriceOscillation)])});
    table.add_row({"diverged hours",
                   std::to_string(r.failure_tally[static_cast<std::size_t>(
                       core::FailureReason::kCouplerDiverged)])});
    table.add_row(
        {"coupler iterations", std::to_string(r.coupler_iterations)});
  }
  table.print(std::cout);

  if (!csv_path.empty() && checkpoint_path.empty()) {
    util::Csv csv(hour_csv_header(coupled));
    for (const auto& h : r.hours) csv.add_row(hour_csv_row(h, coupled));
    csv.save(csv_path);
    std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), csv.num_rows());
  }
  if (r.premium_throughput_ratio() < min_premium) {
    std::fprintf(stderr,
                 "unrecoverable: premium throughput %.4f below the %.3f "
                 "guarantee\n",
                 r.premium_throughput_ratio(), min_premium);
    return core::kExitQosBroken;
  }
  return core::kExitSuccess;
}

/// Column set of the per-tick CSV the serving daemon streams (flushed in
/// lockstep with the tick checkpoint, like simulate's hourly CSV).
std::vector<std::string> tick_csv_header() {
  return {"tick", "hour", "premium_arrivals", "ordinary_arrivals",
          "dropped_premium", "dropped_ordinary", "served_premium",
          "served_ordinary", "premium_depth", "ordinary_depth", "cost",
          "hour_budget", "crowd", "feed_updates", "replanned", "plan_held",
          "stale", "admission", "breaker", "health"};
}

std::vector<std::string> tick_csv_row(const serve::TickRecord& t) {
  return {std::to_string(t.tick), std::to_string(t.hour),
          util::format_double(t.premium_arrivals),
          util::format_double(t.ordinary_arrivals),
          util::format_double(t.dropped_premium),
          util::format_double(t.dropped_ordinary),
          util::format_double(t.served_premium),
          util::format_double(t.served_ordinary),
          util::format_double(t.premium_depth),
          util::format_double(t.ordinary_depth), util::format_double(t.cost),
          util::format_double(t.hour_budget),
          util::format_double(t.crowd_multiplier),
          std::to_string(t.feed_updates), t.replanned ? "1" : "0",
          t.plan_held ? "1" : "0", t.stale ? "1" : "0",
          serve::to_string(t.admission), serve::to_string(t.breaker),
          serve::to_string(t.health)};
}

/// billcap serve: the overload-safe serving daemon — the batch month run
/// at sub-hour tick granularity through the bounded ingest plane, the
/// admission ladder and the breaker-guarded re-plan engine, with a durable
/// per-tick checkpoint. Reuses simulate's config and fault flags.
int cmd_serve(const util::CliArgs& args) {
  core::SimulationConfig config;
  config.monthly_budget = args.get_positive_double("budget", 1.5e6);
  config.policy_level = static_cast<int>(args.get_long("policy", 1));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 2012));
  config.enforce_budget = !args.get_bool("no-cap", false);
  parse_faults(args, config);
  parse_coupler(args, config);

  serve::ServeConfig serve_config;
  serve_config.ticks_per_hour =
      static_cast<std::size_t>(args.get_positive_long("ticks-per-hour", 6));
  const long hours = args.get_long("hours", 0);
  if (hours < 0) throw util::UsageError("--hours: must be >= 0 (0 = month)");
  serve_config.horizon_hours = static_cast<std::size_t>(hours);
  serve_config.premium_queue_ticks =
      args.get_positive_double("premium-queue-ticks", 4.0);
  serve_config.ordinary_queue_ticks =
      args.get_positive_double("ordinary-queue-ticks", 4.0);
  serve_config.feed_queue_capacity =
      static_cast<std::size_t>(args.get_positive_long("feed-queue", 16));
  serve_config.feed_updates_per_tick =
      static_cast<std::size_t>(args.get_positive_long("feed-drain", 1));
  serve_config.admission.stale_ticks_tolerated =
      static_cast<std::size_t>(args.get_positive_long("stale-ticks", 12));
  serve_config.breaker.trip_after =
      static_cast<std::size_t>(args.get_positive_long("breaker-trip", 3));
  serve_config.breaker.cooldown_ticks =
      static_cast<std::size_t>(args.get_positive_long("breaker-cooldown", 4));
  serve_config.replan_node_budget = args.get_long("replan-nodes", 20000);
  if (args.has("replan-deadline-ms"))
    serve_config.replan_deadline_ms =
        args.get_positive_double("replan-deadline-ms", 0.0);
  serve_config.standby = args.get_bool("standby", false);
  for (const auto& t :
       parse_tuples(args.get("kill-at-ticks"), 1, "kill-at-ticks"))
    serve_config.kill_at_ticks.push_back(static_cast<std::size_t>(t[0]));

  const double min_premium = args.get_prob("min-premium", 0.995);
  const std::string checkpoint_path = args.get("checkpoint");
  const bool resume = args.get_bool("resume", false);
  const bool die_on_kill = args.get_bool("die-on-kill", false);
  const auto keep_generations = static_cast<std::size_t>(
      args.get_positive_long("keep-generations", 1));
  if (resume && checkpoint_path.empty())
    throw util::UsageError("--resume requires --checkpoint <path>");
  if (checkpoint_path.empty() && !serve_config.kill_at_ticks.empty())
    throw util::UsageError("--kill-at-ticks requires --checkpoint <path>");
  if (die_on_kill && checkpoint_path.empty())
    throw util::UsageError("--die-on-kill requires --checkpoint <path>");
  if (args.has("standby-hours") && !serve_config.standby)
    throw util::UsageError("--standby-hours requires --standby");

  const core::Simulator sim(config);
  const serve::ServeLoop loop(sim, serve_config);

  const std::string csv_path = args.get("csv");
  std::unique_ptr<util::CsvWriter> writer;
  const auto on_tick = [&](const serve::TickRecord& t) {
    if (csv_path.empty()) return;
    // First committed tick of this attempt: keep only the CSV rows the
    // serve checkpoint vouches for.
    if (!writer)
      writer = std::make_unique<util::CsvWriter>(csv_path, tick_csv_header(),
                                                 t.tick);
    writer->add_row(tick_csv_row(t));
  };

  g_stop_requested = 0;
  std::signal(SIGTERM, request_stop);
  std::signal(SIGINT, request_stop);

  serve::ServeLoop::Controls controls;
  controls.keep_generations = keep_generations;
  controls.stop_flag = &g_stop_requested;
  if (serve_config.standby)
    controls.max_ticks =
        static_cast<std::size_t>(args.get_positive_long("standby-hours", 4)) *
        serve_config.ticks_per_hour;

  const auto report_resume = [&](const serve::ServeOutcome& o) {
    for (const auto& skipped : o.resume_skipped)
      std::fprintf(stderr, "serve checkpoint generation skipped: %s\n",
                   skipped.c_str());
    if (o.resumed_generation > 0)
      std::fprintf(stderr,
                   "resumed from serve checkpoint generation %zu at tick %zu "
                   "(newer generations unusable)\n",
                   o.resumed_generation, o.resumed_from_tick);
  };

  serve::ServeOutcome outcome =
      loop.run(checkpoint_path, resume, on_tick, controls);
  report_resume(outcome);
  std::size_t restarts = 0;
  while (outcome.crashed) {
    if (die_on_kill) {
      // Supervised mode: the injected kill must take down the real process
      // (the kill-cursor-advanced checkpoint is already on disk), so the
      // watchdog sees a genuine abnormal death.
      std::fprintf(stderr, "serve daemon killed at tick %zu; dying\n",
                   outcome.crash_tick);
      std::fflush(nullptr);
#if defined(__unix__) || defined(__APPLE__)
      std::raise(SIGKILL);
#endif
      std::abort();
    }
    ++restarts;
    std::fprintf(stderr, "serve daemon killed at tick %zu; resuming from %s\n",
                 outcome.crash_tick, checkpoint_path.c_str());
    writer.reset();  // reopen against the post-kill checkpoint state
    outcome = loop.run(checkpoint_path, true, on_tick, controls);
    report_resume(outcome);
  }
  if (outcome.stopped) {
    std::printf("stopped gracefully at tick %zu (serve checkpoint "
                "consistent; resume with --resume)\n",
                outcome.report.ticks_committed);
    return core::kExitStopped;
  }

  const serve::ServeReport& r = outcome.report;
  std::printf("serve | policy %d | budget $%.2fM | seed %llu | %zu ticks "
              "(%zu per hour)\n",
              config.policy_level, config.monthly_budget / 1e6,
              static_cast<unsigned long long>(config.seed), r.ticks_committed,
              r.ticks_per_hour);
  util::Table table({"metric", "value"});
  table.add_row({"total cost", "$" + util::format_fixed(r.total_cost, 0)});
  table.add_row({"premium throughput",
                 util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) +
                     "%"});
  table.add_row({"ordinary throughput",
                 util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) +
                     "%"});
  table.add_row({"premium dropped", util::format_double(r.dropped_premium)});
  table.add_row({"ordinary dropped", util::format_double(r.dropped_ordinary)});
  table.add_row({"max premium queue fill",
                 util::format_fixed(
                     100.0 * r.max_premium_depth /
                         std::max(r.premium_queue_capacity, 1.0), 1) + "%"});
  table.add_row({"max ordinary queue fill",
                 util::format_fixed(
                     100.0 * r.max_ordinary_depth /
                         std::max(r.ordinary_queue_capacity, 1.0), 1) + "%"});
  table.add_row({"feed updates seen", std::to_string(r.feed_updates_seen)});
  table.add_row(
      {"feed updates dropped", std::to_string(r.feed_updates_dropped)});
  table.add_row({"re-plans", std::to_string(r.replans) + " (" +
                                 std::to_string(r.degraded_replans) +
                                 " degraded)"});
  table.add_row({"breaker trips", std::to_string(r.breaker_trips)});
  if (config.market_coupler.enabled)
    table.add_row(
        {"coupled curve refreshes", std::to_string(r.coupled_refreshes)});
  table.add_row({"shed ticks", std::to_string(r.shed_ticks)});
  table.add_row({"standby ticks", std::to_string(r.standby_ticks)});
  table.add_row({"final health", serve::to_string(r.final_health)});
  table.print(std::cout);

  if (!r.health_history.empty()) {
    std::printf("health transitions (%zu total%s):\n", r.health_transitions,
                r.health_transitions > r.health_history.size()
                    ? ", newest shown"
                    : "");
    for (const auto& t : r.health_history)
      std::printf("  tick %6zu  %s -> %s\n", t.tick, serve::to_string(t.from),
                  serve::to_string(t.to));
  }
  if (restarts > 0)
    std::printf("recovered from %zu daemon kill(s)\n", restarts);
  if (writer)
    std::printf("wrote %s (%zu rows)\n", csv_path.c_str(), writer->num_rows());

  if (!r.premium_qos_ok() || r.premium_throughput_ratio() < min_premium) {
    std::fprintf(stderr,
                 "unrecoverable: premium QoS contract broken (dropped %.0f "
                 "at the door, final backlog %.0f, throughput %.4f)\n",
                 r.dropped_premium, r.final_premium_depth,
                 r.premium_throughput_ratio());
    return core::kExitQosBroken;
  }
  return core::kExitSuccess;
}

int cmd_sweep(const util::CliArgs& args) {
  const auto budgets =
      args.get_double_list("budgets", {0.5e6, 1.0e6, 1.5e6, 2.0e6, 2.5e6});
  util::Table table({"budget", "cost / budget", "premium", "ordinary"});
  for (double budget : budgets) {
    core::SimulationConfig config;
    config.monthly_budget = budget;
    config.policy_level = static_cast<int>(args.get_long("policy", 1));
    config.seed = static_cast<std::uint64_t>(args.get_long("seed", 2012));
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    table.add_row({"$" + util::format_fixed(budget / 1e6, 2) + "M",
                   util::format_fixed(r.budget_utilization(), 3),
                   util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
                   util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%"});
  }
  table.print(std::cout);
  return core::kExitSuccess;
}

int cmd_opf(const util::CliArgs& args) {
  const double load = args.get_double("load", 900.0);
  const market::Grid grid = market::pjm5_grid();
  const market::DcOpfResult r =
      market::solve_dcopf(grid, market::pjm5_loads(load));
  if (!r.ok()) {
    std::printf("OPF %s at %.1f MW system load\n", lp::to_string(r.status),
                load);
    return core::kExitRuntimeError;
  }
  const market::DcOpfReport report = market::analyze_opf(grid, r);
  std::printf("system load %.1f MW | dispatch cost $%.2f/h | reference "
              "price %.2f $/MWh\n\n",
              load, r.total_cost, report.reference_price);
  util::Table buses({"bus", "LMP $/MWh", "congestion $/MWh"});
  for (int b = 0; b < grid.num_buses(); ++b) {
    buses.add_row({grid.bus_name(b),
                   util::format_fixed(r.lmp[static_cast<std::size_t>(b)], 2),
                   util::format_fixed(
                       report.congestion_component[static_cast<std::size_t>(b)], 2)});
  }
  buses.print(std::cout);
  if (!report.binding.empty()) {
    std::printf("\nbinding constraints:\n");
    for (const auto& b : report.binding) {
      if (b.kind == market::BindingConstraint::Kind::kGeneratorLimit)
        std::printf("  generator %s at %.1f MW\n",
                    grid.generator(b.index).name.c_str(), b.value);
      else
        std::printf("  line %s at %.1f MW\n", grid.line(b.index).name.c_str(),
                    b.value);
    }
  }
  return core::kExitSuccess;
}

int cmd_trace(const util::CliArgs& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 2012));
  const workload::TwoMonthTrace both = workload::paper_two_month_trace(seed);
  workload::TraceStatsOptions options;
  options.spike_threshold = 1.12;
  const workload::TraceStats history = analyze_trace(both.history, options);
  options.phase_offset_hours = both.history.hours();
  const workload::TraceStats eval = analyze_trace(both.evaluation, options);

  util::Table table({"metric", "history month", "evaluation month"});
  auto row = [&table](const char* label, double a, double b, int precision) {
    table.add_row({label, util::format_fixed(a, precision),
                   util::format_fixed(b, precision)});
  };
  row("mean Greq/h", history.mean / 1e9, eval.mean / 1e9, 1);
  row("peak Greq/h", history.peak / 1e9, eval.peak / 1e9, 1);
  row("peak/mean", history.peak_to_mean, eval.peak_to_mean, 3);
  row("hourly CV^2", history.hourly_cv2, eval.hourly_cv2, 4);
  row("weekly pattern", history.weekly_pattern_strength,
      eval.weekly_pattern_strength, 3);
  row("spike hours", static_cast<double>(history.spike_hours),
      static_cast<double>(eval.spike_hours), 0);
  table.print(std::cout);
  return core::kExitSuccess;
}

/// Absolute path of this binary, for spawning supervised children. Falls
/// back to argv[0] when /proc/self/exe is unavailable.
std::string self_path(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
#endif
  return std::string(argv0);
}

/// billcap supervise: a watchdog around `billcap simulate`. Forks the
/// controller as a child, restarts it (with budget + backoff) when it dies
/// abnormally, escalates to the degraded premium-only standby after
/// repeated zero-progress deaths, and stops cleanly on SIGTERM/SIGINT or a
/// graceful child exit. Needs raw argv so non-supervisor flags can be
/// forwarded to the child verbatim.
int cmd_supervise(int argc, char** argv, const util::CliArgs& args) {
  const std::string checkpoint_path = args.get("checkpoint");
  if (checkpoint_path.empty())
    throw util::UsageError("supervise requires --checkpoint <path>");

  core::SupervisorOptions options;
  options.restart_budget =
      static_cast<std::size_t>(args.get_positive_long("restart-budget", 100));
  options.restart_window_s =
      args.get_positive_double("restart-window-s", 3600.0);
  options.backoff_base_ms = args.get_positive_double("backoff-ms", 50.0);
  options.backoff_multiplier =
      args.get_positive_double("backoff-multiplier", 2.0);
  options.backoff_max_ms = args.get_positive_double("backoff-max-ms", 5000.0);
  options.backoff_jitter_frac = args.get_prob("backoff-jitter", 0.2);
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 2012));
  options.escalate_after =
      static_cast<std::size_t>(args.get_positive_long("escalate-after", 3));
  options.standby_hours =
      static_cast<std::size_t>(args.get_positive_long("standby-hours", 4));
  const auto keep_generations = static_cast<std::size_t>(
      args.get_positive_long("keep-generations", 3));

  // Flags the supervisor consumes or controls itself; everything else on
  // the command line is forwarded to the simulate child verbatim.
  static const std::set<std::string> kSupervisorFlags = {
      "restart-budget", "restart-window-s", "backoff-ms",
      "backoff-multiplier", "backoff-max-ms", "backoff-jitter",
      "escalate-after", "standby-hours", "keep-generations",
      "resume", "die-on-crash", "die-on-kill", "standby", "serve"};
  std::vector<std::string> forwarded;
  bool command_seen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.size() >= 3 && token[0] == '-' && token[1] == '-') {
      const std::size_t eq = token.find('=');
      const std::string name =
          eq == std::string::npos ? token.substr(2) : token.substr(2, eq - 2);
      const bool separate_value =
          eq == std::string::npos && i + 1 < argc &&
          !(std::string(argv[i + 1]).rfind("--", 0) == 0);
      if (kSupervisorFlags.count(name)) {
        if (separate_value) ++i;
        continue;
      }
      forwarded.push_back(token);
      if (separate_value) forwarded.emplace_back(argv[++i]);
    } else if (!command_seen) {
      command_seen = true;  // the "supervise" command word
    } else {
      throw util::UsageError("supervise: unexpected positional '" + token +
                             "'");
    }
  }

  // Both children always resume from the rotated checkpoint chain and let
  // injected crashes (or serve kill-ticks) kill the real process so the
  // watchdog sees them. --serve supervises the serving daemon instead of
  // the batch controller.
  const bool serve_child = args.get_bool("serve", false);
  core::ChildSpec primary;
  primary.program = self_path(argv[0]);
  primary.args.emplace_back(serve_child ? "serve" : "simulate");
  primary.args.insert(primary.args.end(), forwarded.begin(), forwarded.end());
  primary.args.emplace_back("--resume");
  primary.args.emplace_back(serve_child ? "--die-on-kill" : "--die-on-crash");
  primary.args.emplace_back("--keep-generations");
  primary.args.push_back(std::to_string(keep_generations));

  core::ChildSpec standby = primary;
  standby.args.emplace_back("--standby");
  standby.args.emplace_back("--standby-hours");
  standby.args.push_back(std::to_string(options.standby_hours));

  core::Supervisor supervisor(options, std::move(primary), std::move(standby),
                              checkpoint_path, keep_generations);
  const core::SuperviseReport report = supervisor.run();

  std::printf(
      "supervise: %zu primary run(s), %zu standby run(s), %zu restart(s)%s\n",
      report.primary_runs, report.standby_runs, report.restarts,
      report.escalated ? " [escalated to standby]" : "");
  if (report.gave_up)
    std::fprintf(stderr, "supervise: gave up (restart budget exhausted)\n");
  return report.exit_code;
}

int cmd_help() {
  std::printf(
      "billcap — electricity bill capping for cloud-scale data centers\n\n"
      "commands:\n"
      "  simulate  run one month (--budget --policy --strategy --seed\n"
      "            --no-cap --csv out.csv --months N)\n"
      "            fault injection: --outages site:start:dur,...\n"
      "              --stale start:dur,...  --shocks site:start:dur:mult,...\n"
      "              --squeezes start:dur:ms,...  or random via\n"
      "              --fault-outage-rate --fault-stale-rate\n"
      "              --fault-shock-rate --fault-squeeze-rate (per hour)\n"
      "              with mean interval lengths --fault-outage-mean\n"
      "              --fault-stale-mean --fault-shock-mean\n"
      "              --fault-squeeze-mean (hours, >= 1)\n"
      "            market-feed retry: --feed-retry-prob p (per attempt)\n"
      "              --feed-max-retries N --feed-backoff-ms B\n"
      "            crash tolerance: --checkpoint path (durable per-hour\n"
      "              checkpoint) --resume (continue from it)\n"
      "              --crash-at h1,h2,...  --crash-rate p (injected\n"
      "              controller deaths, survived via the checkpoint)\n"
      "              --exit-storm hour:count,...  (repeated no-progress\n"
      "              deaths) --corrupt-checkpoint-at h,... (bit rot in the\n"
      "              newest checkpoint generation)\n"
      "              --keep-generations K  rotated checkpoint generations\n"
      "              --die-on-crash  injected crashes SIGKILL the process\n"
      "              --standby [--standby-hours N]  degraded premium-only\n"
      "              mode (no MILP), N committed hours per attempt\n"
      "            closed market loop: --closed-loop (plan against curves\n"
      "              re-derived from the fleet's own price impact, billed at\n"
      "              realized LMPs) --coupler-max-iters N --coupler-gain G\n"
      "              --damping off|ladder|full --coupler-open-plan (static\n"
      "              planning, coupled billing). Grid hazards:\n"
      "              --line-outage line:start:dur,...\n"
      "              --bg-shock bus:start:dur:mult,...\n"
      "              --congestion-spike line:start:dur:factor,...\n"
      "              An oscillating or diverging hour falls back open-loop\n"
      "              (breaker), counts degraded, and exits 0 unless the\n"
      "              premium guarantee itself breaks (exit 3).\n"
      "            --deadline-ms M   hard wall-clock limit per solve\n"
      "            --warm-solver     hour-over-hour solver warm starts\n"
      "                              (faster; costs bitwise kill/resume)\n"
      "            --min-premium r   exit 3 if premium throughput < r\n"
      "  serve     overload-safe serving daemon: the month at sub-hour ticks\n"
      "            through a bounded ingest plane, an admission ladder and a\n"
      "            breaker-guarded re-plan engine. Takes simulate's config\n"
      "            and fault flags, plus: --ticks-per-hour N  --hours H\n"
      "            --premium-queue-ticks --ordinary-queue-ticks (capacity in\n"
      "            mean tick arrivals) --feed-queue N --feed-drain N\n"
      "            --stale-ticks N (re-plan staleness tolerance)\n"
      "            --breaker-trip N --breaker-cooldown T (circuit breaker)\n"
      "            --replan-nodes N --replan-deadline-ms M (per-tick\n"
      "            re-plan budget; node budget keeps resume bitwise)\n"
      "            --kill-at-ticks t1,t2,... --die-on-kill (injected daemon\n"
      "            deaths) --checkpoint --resume --keep-generations --csv\n"
      "            --standby [--standby-hours N] --min-premium r\n"
      "  supervise watchdog around simulate (or the serving daemon with\n"
      "            --serve): forks the controller, restarts\n"
      "            abnormal exits with a budget (--restart-budget\n"
      "            --restart-window-s) and exponential backoff (--backoff-ms\n"
      "            --backoff-multiplier --backoff-max-ms --backoff-jitter),\n"
      "            escalates to standby after --escalate-after zero-progress\n"
      "            deaths, keeps --keep-generations rotated checkpoints.\n"
      "            All other flags are forwarded to the child.\n"
      "  sweep     budget sweep (--budgets 0.5e6,1e6,... --policy --seed)\n"
      "  opf       PJM 5-bus optimal power flow (--load MW)\n"
      "  trace     synthetic workload statistics (--seed)\n"
      "  help      this text\n\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  runtime error (I/O failure, no viable checkpoint generation)\n"
      "  2  usage error (unknown command, bad or out-of-range flag)\n"
      "  3  unrecoverable degradation (premium QoS guarantee broken)\n"
      "  4  graceful stop (SIGTERM/SIGINT honoured, or a standby attempt\n"
      "     that committed its chunk) — resume with --resume\n"
      "  5  supervisor gave up (restart budget exhausted)\n");
  return billcap::core::kExitSuccess;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    if (args.command() == "simulate") return cmd_simulate(args);
    if (args.command() == "serve") return cmd_serve(args);
    if (args.command() == "supervise") return cmd_supervise(argc, argv, args);
    if (args.command() == "sweep") return cmd_sweep(args);
    if (args.command() == "opf") return cmd_opf(args);
    if (args.command() == "trace") return cmd_trace(args);
    if (args.command().empty() || args.command() == "help") return cmd_help();
    std::fprintf(stderr, "unknown command '%s' (try: billcap help)\n",
                 args.command().c_str());
    return billcap::core::kExitUsage;
  } catch (const util::UsageError& e) {
    std::fprintf(stderr, "usage error: %s (try: billcap help)\n", e.what());
    return billcap::core::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
