// Ablation — what does modeling cooling + networking power in the
// OPTIMIZER buy (the paper's first criticism of prior work)?
//
// Both variants are billed at full ground truth (servers + network +
// cooling, real step prices, cap penalties); only the optimizer's belief
// differs. The blind variant underestimates every site's draw by the
// cooling/network overhead, mis-ranks sites whose overheads differ
// (coe 1.94 vs 1.39 vs 1.74) and mispredicts where price steps bite.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace billcap;

  bench::heading("Ablation: optimizer power-model fidelity (billed at full "
                 "ground truth)");
  util::Table table({"policy", "full model $", "server-only belief $",
                     "full-model saves", "belief error (pred/truth)"});
  util::Csv csv({"policy", "full_cost", "blind_cost", "blind_pred_ratio"});

  for (int policy : {1, 2, 3}) {
    core::SimulationConfig config;
    config.policy_level = policy;
    config.enforce_budget = false;

    const core::MonthlyResult full =
        core::Simulator(config).run(core::Strategy::kCostCapping);

    config.optimizer.model_cooling_network = false;
    const core::MonthlyResult blind =
        core::Simulator(config).run(core::Strategy::kCostCapping);

    double blind_predicted = 0.0;
    for (const auto& h : blind.hours) blind_predicted += h.predicted_cost;

    table.add_row(
        {"Policy" + std::to_string(policy),
         util::format_fixed(full.total_cost, 0),
         util::format_fixed(blind.total_cost, 0),
         util::format_fixed(100.0 * (blind.total_cost - full.total_cost) /
                                blind.total_cost, 2) + "%",
         util::format_fixed(blind_predicted / blind.total_cost, 3)});
    csv.add_numeric_row({static_cast<double>(policy), full.total_cost,
                         blind.total_cost,
                         blind_predicted / blind.total_cost});
  }
  table.print(std::cout);
  std::printf(
      "\nThe server-only belief underestimates its own bill by the cooling/"
      "network\nshare (~35-45%%) and allocates slightly worse; the full model"
      " is never worse.\n");
  bench::save_csv(csv, "ablation_power_model");
  return 0;
}
