// Ablation — how much does the history-based hourly budgeting of Section
// VI-B matter, and how robust is it to workload misprediction (the
// Section IX concern)?
//
// Four budgeters are compared under a stringent monthly budget:
//   * history  — the paper's 2-week hour-of-week weights
//   * uniform  — flat 1/168 weights (no workload knowledge)
//   * oracle   — weights from the evaluation month itself (perfect
//                prediction upper bound)
//   * mispredicted — history weights learned from a *different* random
//                month (prediction-error injection)

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace billcap;

  const double budget = 1.0e6;
  struct Row {
    const char* label;
    core::BudgetWeighting weighting;
    std::uint64_t history_offset;
  };
  const Row rows[] = {
      {"history (paper)", core::BudgetWeighting::kHistory, 0},
      {"uniform", core::BudgetWeighting::kUniform, 0},
      {"oracle", core::BudgetWeighting::kOracle, 0},
      {"mispredicted history", core::BudgetWeighting::kHistory, 977},
  };

  bench::heading("Ablation: budgeter weighting under a $1.0M budget");
  util::Table table({"budgeter", "cost / budget", "ordinary served",
                     "zero-ordinary hrs", "premium-only hrs"});
  util::Csv csv({"budgeter_id", "cost_over_budget", "ordinary_ratio",
                 "zero_ordinary_hours", "premium_only_hours"});
  int id = 0;
  for (const Row& row : rows) {
    core::SimulationConfig config;
    config.monthly_budget = budget;
    config.budget_weighting = row.weighting;
    config.history_seed_offset = row.history_offset;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    int zero_ordinary = 0;
    int premium_only = 0;
    for (const auto& h : r.hours) {
      if (h.served_ordinary < 1.0) ++zero_ordinary;
      if (h.mode == core::CappingOutcome::Mode::kPremiumOnly) ++premium_only;
    }
    table.add_row({row.label,
                   util::format_fixed(r.budget_utilization(), 3),
                   util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
                   std::to_string(zero_ordinary),
                   std::to_string(premium_only)});
    csv.add_numeric_row({static_cast<double>(id++), r.budget_utilization(),
                         r.ordinary_throughput_ratio(),
                         static_cast<double>(zero_ordinary),
                         static_cast<double>(premium_only)});
  }
  table.print(std::cout);
  std::printf(
      "\nBudget compliance orders by prediction quality: oracle tracks the\n"
      "cap tightest, the paper's history weights come close, uniform\n"
      "overshoots most (its flat hourly budgets force more premium-only\n"
      "violations at the weekly peaks). Mispredicted history degrades\n"
      "gracefully — the weekly pattern family is shared across random\n"
      "worlds.\n");
  bench::save_csv(csv, "ablation_budgeter");
  return 0;
}
