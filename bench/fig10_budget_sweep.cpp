// Figure 10 — Monthly throughput of Cost Capping across a series of
// monthly budgets ($0.5M .. $2.5M), normalized against the arriving
// premium and ordinary volumes. Premium stays at 100 % everywhere;
// ordinary throughput rises with the budget and saturates once the budget
// is ample. The five month-long simulations run through the thread pool.

#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace billcap;

  constexpr std::array<double, 5> kBudgets = {0.5e6, 1.0e6, 1.5e6, 2.0e6,
                                              2.5e6};
  std::vector<core::MonthlyResult> results(kBudgets.size());
  util::parallel_for(kBudgets.size(), [&](std::size_t i) {
    core::SimulationConfig config;
    config.monthly_budget = kBudgets[i];
    results[i] = core::Simulator(config).run(core::Strategy::kCostCapping);
  });

  bench::heading("Fig. 10: monthly throughput vs monthly budget");
  util::Table table({"budget", "premium served", "ordinary served",
                     "ordinary (G requests)", "cost / budget"});
  util::Csv csv({"budget", "premium_ratio", "ordinary_ratio",
                 "ordinary_served_requests", "cost"});
  for (std::size_t i = 0; i < kBudgets.size(); ++i) {
    const auto& r = results[i];
    table.add_row({"$" + util::format_fixed(kBudgets[i] / 1e6, 1) + "M",
                   util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
                   util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
                   util::format_fixed(r.total_served_ordinary / 1e9, 0),
                   util::format_fixed(r.budget_utilization(), 3)});
    csv.add_numeric_row({kBudgets[i], r.premium_throughput_ratio(),
                         r.ordinary_throughput_ratio(),
                         r.total_served_ordinary, r.total_cost});
  }
  table.print(std::cout);
  std::printf(
      "\nShape check (paper Fig. 10): premium at 100%% for every budget;\n"
      "ordinary throughput grows with the budget and saturates at the ample"
      " end\n(the paper's interesting $2.0M case — nearly-but-not-quite full"
      " service due\nto history-based hourly budgeting — appears here as"
      " well).\n");
  bench::save_csv(csv, "fig10_budget_sweep");
  return 0;
}
