// Figures 7 and 8 — Bill capping under an INSUFFICIENT monthly budget:
//  * Fig. 7: premium traffic keeps 100 % service; ordinary traffic is
//    admission-controlled, down to zero in the starved hours.
//  * Fig. 8: hourly cost vs hourly budget; hours where the premium QoS
//    guarantee forces a deliberate budget violation are flagged.
//
// Budget calibration: in this reproduction the uncapped month costs
// ~$1.5M, so the paper's stringent "$1.5M of ~$1.9M needed" corresponds to
// ~$1.0M here (see EXPERIMENTS.md); the paper's literal $1.5M is also run
// for reference.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "util/calendar.hpp"

namespace {

void run_budget(double budget, bool dump_csv) {
  using namespace billcap;
  core::SimulationConfig config;
  config.monthly_budget = budget;
  const core::Simulator sim(config);
  const core::MonthlyResult r = sim.run(core::Strategy::kCostCapping);

  bench::heading("Fig. 7: throughput under a $" +
                 util::format_fixed(budget / 1e6, 1) + "M monthly budget");
  int zero_ordinary = 0;
  int premium_only = 0;
  for (const auto& rec : r.hours) {
    if (rec.served_ordinary < 1.0) ++zero_ordinary;
    if (rec.mode == core::CappingOutcome::Mode::kPremiumOnly) ++premium_only;
  }
  util::Table fig7({"hour", "premium in (G)", "premium served (G)",
                    "ordinary in (G)", "ordinary served (G)", "mode"});
  // Show a stressed weekday stretch.
  for (std::size_t h = 320; h < 360; h += 2) {
    const auto& rec = r.hours[h];
    fig7.add_row({std::to_string(h),
                  util::format_fixed(rec.premium_arrivals / 1e9, 1),
                  util::format_fixed(rec.served_premium / 1e9, 1),
                  util::format_fixed(rec.ordinary_arrivals / 1e9, 1),
                  util::format_fixed(rec.served_ordinary / 1e9, 1),
                  core::to_string(rec.mode)});
  }
  fig7.print(std::cout);
  std::printf(
      "\nmonthly: premium served %.2f%% | ordinary served %.2f%% | "
      "%d zero-ordinary hours | %d premium-only hours\n",
      100.0 * r.premium_throughput_ratio(),
      100.0 * r.ordinary_throughput_ratio(), zero_ordinary, premium_only);

  bench::heading("Fig. 8: hourly cost vs budget (one row per day)");
  util::Table fig8({"hour", "day", "hourly budget $", "cost $", "violated?"});
  for (std::size_t h = 12; h < r.hours.size(); h += 24) {
    const auto& rec = r.hours[h];
    fig8.add_row({std::to_string(h),
                  util::hour_label(sim.history_trace().hours() + h),
                  util::format_fixed(rec.hourly_budget, 1),
                  util::format_fixed(rec.cost, 1),
                  rec.mode == core::CappingOutcome::Mode::kPremiumOnly
                      ? "YES (premium QoS)"
                      : "no"});
  }
  fig8.print(std::cout);
  std::printf("\nmonthly: cost $%.0f of $%.0f (utilization %.1f%%), "
              "%d hourly violations forced by the premium guarantee\n",
              r.total_cost, r.monthly_budget,
              100.0 * r.budget_utilization(), premium_only);

  if (dump_csv) {
    billcap::util::Csv csv({"hour", "premium_in", "premium_served",
                            "ordinary_in", "ordinary_served", "hourly_budget",
                            "cost", "premium_only_mode"});
    for (const auto& rec : r.hours) {
      csv.add_numeric_row(
          {static_cast<double>(rec.hour), rec.premium_arrivals,
           rec.served_premium, rec.ordinary_arrivals, rec.served_ordinary,
           rec.hourly_budget, rec.cost,
           rec.mode == core::CappingOutcome::Mode::kPremiumOnly ? 1.0 : 0.0});
    }
    bench::save_csv(csv, "fig07_fig08_tight_budget");
  }
}

}  // namespace

int main() {
  run_budget(1.0e6, /*dump_csv=*/true);   // calibrated stringent budget
  run_budget(1.5e6, /*dump_csv=*/false);  // the paper's literal value
  return 0;
}
