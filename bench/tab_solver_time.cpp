// Section IV-C claim — "for a large system with 3 data centers and 5
// different pricing levels, lp_solve consumes at most 2 millisecond in an
// invocation period ... to determine the optimal workload allocations with
// up to 1e8 requests."
//
// Two parts. The custom main first runs the solver-engine comparison — a
// month of hourly min-cost MILPs on exactly that problem shape, solved by
// the legacy reference engine, by a cold arena (fresh ArenaSolver per
// hour) and by a warm arena (one solver carrying its basis hour over
// hour) — verifies all three agree on every objective, and drops the
// numbers as BENCH_solver.json (archived by tools/ci.sh). Then the
// google-benchmark micro benches below time the production entry points
// across workload magnitudes; pass --benchmark_filter=^$ to skip them.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/bill_capper.hpp"
#include "core/cost_minimizer.hpp"
#include "core/formulation.hpp"
#include "core/throughput_maximizer.hpp"
#include "datacenter/catalog.hpp"
#include "lp/arena_solver.hpp"
#include "lp/milp.hpp"
#include "market/pricing_policy.hpp"

namespace {

using namespace billcap;

struct Fixture {
  std::vector<datacenter::DataCenter> sites =
      datacenter::paper_datacenters();
  std::vector<market::PricingPolicy> policies = market::paper_policies(1);
  std::vector<double> demand = {228.0, 182.0, 172.0};
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// ---- BENCH_solver.json: cold vs warm engine comparison ---------------------

/// The hourly min-cost MILP at a given total arrival rate — the same
/// formulation BillCapper's step 1 solves every invocation period.
lp::Problem min_cost_problem(const std::vector<core::SiteModel>& models,
                             double lambda_total) {
  core::AllocationFormulation f = core::build_allocation_formulation(models);
  f.problem.set_sense(lp::Sense::kMinimize);
  std::vector<lp::Term> terms;
  terms.reserve(f.vars.size());
  for (const core::SiteVars& v : f.vars) terms.push_back({v.lambda, 1.0});
  f.problem.add_constraint("demand", std::move(terms), lp::Relation::kEqual,
                           lambda_total / core::kLambdaScale);
  return f.problem;
}

// billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
double microseconds_since(std::chrono::steady_clock::time_point start) {
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(now - start).count();
}

/// Runs the month-long engine comparison and writes BENCH_solver.json into
/// the working directory. Returns false (and reports) when any engine
/// disagrees with the reference — the benchmark numbers are only worth
/// publishing at equal objectives.
bool write_solver_bench_json() {
  bench::heading("solver engines: reference vs cold arena vs warm arena");
  const Fixture& f = fixture();
  std::vector<core::SiteModel> models;
  models.reserve(f.sites.size());
  for (std::size_t i = 0; i < f.sites.size(); ++i)
    models.push_back(
        core::make_site_model(f.sites[i], f.policies[i], f.demand[i]));

  // A month of hourly problems on a diurnal arrival curve, built up front
  // so problem construction never pollutes the solve timings.
  constexpr int kHours = 720;
  std::vector<lp::Problem> problems;
  problems.reserve(kHours);
  for (int h = 0; h < kHours; ++h) {
    const double lambda =
        5e11 + 3.5e11 * std::sin(2.0 * 3.14159265358979323846 * h / 24.0);
    problems.push_back(min_cost_problem(models, lambda));
  }

  std::vector<double> ref_obj(kHours, 0.0);
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto t_ref = std::chrono::steady_clock::now();
  for (int h = 0; h < kHours; ++h) {
    const lp::Solution s = lp::solve_milp_reference(problems[h]);
    if (s.status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "reference engine: hour %d not optimal (%s)\n", h,
                   lp::to_string(s.status));
      return false;
    }
    ref_obj[static_cast<std::size_t>(h)] = s.objective;
  }
  const double ref_us = microseconds_since(t_ref) / kHours;

  double max_rel_diff = 0.0;
  const auto check = [&](int h, const lp::Solution& s, const char* engine) {
    if (s.status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "%s: hour %d not optimal (%s)\n", engine, h,
                   lp::to_string(s.status));
      return false;
    }
    const double want = ref_obj[static_cast<std::size_t>(h)];
    const double scale = std::max(1.0, std::abs(want));
    const double diff = std::abs(s.objective - want) / scale;
    max_rel_diff = std::max(max_rel_diff, diff);
    if (diff > 1e-9) {
      std::fprintf(stderr, "%s: hour %d objective diverges (%.12g vs %.12g)\n",
                   engine, h, s.objective, want);
      return false;
    }
    return true;
  };

  lp::ArenaStats cold_stats;
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto t_cold = std::chrono::steady_clock::now();
  for (int h = 0; h < kHours; ++h) {
    lp::ArenaSolver solver;  // fresh arena: pure cold path
    if (!check(h, solver.solve(problems[h]), "arena cold")) return false;
    const lp::ArenaStats& s = solver.stats();
    cold_stats.primal_iterations += s.primal_iterations;
    cold_stats.dual_iterations += s.dual_iterations;
    cold_stats.nodes_explored += s.nodes_explored;
  }
  const double cold_us = microseconds_since(t_cold) / kHours;

  lp::ArenaSolver warm(lp::ArenaConfig{.warm_across_solves = true});
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto t_warm = std::chrono::steady_clock::now();
  for (int h = 0; h < kHours; ++h)
    if (!check(h, warm.solve(problems[h]), "arena warm")) return false;
  const double warm_us = microseconds_since(t_warm) / kHours;
  const lp::ArenaStats& ws = warm.stats();
  const long warm_attempts = ws.warm_solves + ws.warm_fallbacks;
  const double fallback_rate =
      warm_attempts > 0
          ? static_cast<double>(ws.warm_fallbacks) /
                static_cast<double>(warm_attempts)
          : 0.0;

  util::Table table({"engine", "us/solve", "pivots/solve", "nodes/solve"});
  const auto row = [&](const char* name, double us, long pivots, long nodes) {
    char us_s[32], piv_s[32], nod_s[32];
    std::snprintf(us_s, sizeof us_s, "%.1f", us);
    std::snprintf(piv_s, sizeof piv_s, "%.1f",
                  static_cast<double>(pivots) / kHours);
    std::snprintf(nod_s, sizeof nod_s, "%.1f",
                  static_cast<double>(nodes) / kHours);
    table.add_row({name, us_s, piv_s, nod_s});
  };
  row("cold (legacy, from scratch)", ref_us, 0, 0);
  row("arena cold", cold_us,
      cold_stats.primal_iterations + cold_stats.dual_iterations,
      cold_stats.nodes_explored);
  row("arena warm", warm_us, ws.primal_iterations + ws.dual_iterations,
      ws.nodes_explored);
  table.print(std::cout);
  std::printf("warm vs cold (from-scratch): %.1fx  warm vs arena cold: "
              "%.1fx  fallback rate: %.4f  max |obj diff|: %.3g\n",
              ref_us / warm_us, cold_us / warm_us, fallback_rate,
              max_rel_diff);

  const std::string path = "BENCH_solver.json";
  // billcap-lint: allow(raw-write): bench artifact, regenerated every run; no resume path reads it
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"tab_solver_time\",\n"
      "  \"shape\": {\"sites\": %zu, \"price_levels\": 5, \"hours\": %d},\n"
      "  \"cold\": {\"engine\": \"legacy two-phase from scratch per node\","
      " \"us_per_solve\": %.3f},\n"
      "  \"arena_cold\": {\"engine\": \"arena + dual warm-started children,"
      " fresh per hour\", \"us_per_solve\": %.3f, \"pivots_per_solve\": %.3f,"
      " \"nodes_per_solve\": %.3f},\n"
      "  \"arena_warm\": {\"engine\": \"arena carried hour over hour\","
      " \"us_per_solve\": %.3f, \"pivots_per_solve\": %.3f,"
      " \"nodes_per_solve\": %.3f, \"warm_solves\": %ld,"
      " \"warm_fallbacks\": %ld, \"fallback_rate\": %.6f,"
      " \"node_warm_solves\": %ld, \"node_cold_solves\": %ld},\n"
      "  \"speedup_warm_vs_cold\": %.3f,\n"
      "  \"speedup_warm_vs_arena_cold\": %.3f,\n"
      "  \"max_objective_rel_diff\": %.3g\n"
      "}\n",
      f.sites.size(), kHours, ref_us, cold_us,
      static_cast<double>(cold_stats.primal_iterations +
                          cold_stats.dual_iterations) /
          kHours,
      static_cast<double>(cold_stats.nodes_explored) / kHours, warm_us,
      static_cast<double>(ws.primal_iterations + ws.dual_iterations) / kHours,
      static_cast<double>(ws.nodes_explored) / kHours, ws.warm_solves,
      ws.warm_fallbacks, fallback_rate, ws.node_warm_solves,
      ws.node_cold_solves, ref_us / warm_us, cold_us / warm_us, max_rel_diff);
  out << buf;
  out.close();
  std::printf("[data] %s\n", std::filesystem::absolute(path).string().c_str());
  return true;
}

// ---- google-benchmark micro benches ----------------------------------------

void BM_CostMinimization(benchmark::State& state) {
  const Fixture& f = fixture();
  const double lambda = static_cast<double>(state.range(0)) * 1e9;
  for (auto _ : state) {
    const core::AllocationResult r =
        core::minimize_cost(f.sites, f.policies, f.demand, lambda);
    benchmark::DoNotOptimize(r.predicted_cost);
  }
}
BENCHMARK(BM_CostMinimization)->Arg(1)->Arg(100)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_ThroughputMaximization(benchmark::State& state) {
  const Fixture& f = fixture();
  const double lambda = static_cast<double>(state.range(0)) * 1e9;
  for (auto _ : state) {
    const core::AllocationResult r = core::maximize_throughput(
        f.sites, f.policies, f.demand, lambda, /*cost_budget=*/1200.0);
    benchmark::DoNotOptimize(r.total_lambda);
  }
}
BENCHMARK(BM_ThroughputMaximization)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_BillCapperDecide(benchmark::State& state) {
  const Fixture& f = fixture();
  const core::BillCapper capper(f.sites, f.policies);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const core::CappingOutcome outcome =
        capper.decide(8e11, 2e11, f.demand, budget);
    benchmark::DoNotOptimize(outcome.served_ordinary);
  }
}
// Ample budget = step 1 only; tight = both steps; punishing = all three
// solves (min, max-throughput, premium-only min).
BENCHMARK(BM_BillCapperDecide)->Arg(10'000)->Arg(1'500)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_BillCapperDecideWarm(benchmark::State& state) {
  // The same three-step decide, but with hour-over-hour warm starts on —
  // the production fast path behind --warm-solver.
  const Fixture& f = fixture();
  core::OptimizerOptions options;
  options.warm_hourly_solver = true;
  const core::BillCapper capper(f.sites, f.policies, options);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const core::CappingOutcome outcome =
        capper.decide(8e11, 2e11, f.demand, budget);
    benchmark::DoNotOptimize(outcome.served_ordinary);
  }
}
BENCHMARK(BM_BillCapperDecideWarm)->Arg(10'000)->Arg(1'500)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_MoreSitesScaling(benchmark::State& state) {
  // Complexity is exponential in the binaries (sites x price levels);
  // replicate the catalog to grow the instance.
  const auto base = datacenter::paper_datacenters();
  const auto base_policies = market::paper_policies(1);
  std::vector<datacenter::DataCenter> sites;
  std::vector<market::PricingPolicy> policies;
  std::vector<double> demand;
  const int replicas = static_cast<int>(state.range(0));
  for (int rep = 0; rep < replicas; ++rep) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      sites.push_back(base[i]);
      policies.push_back(base_policies[i]);
      demand.push_back(170.0 + 20.0 * static_cast<double>(rep));
    }
  }
  const double lambda = 4e11 * replicas;
  for (auto _ : state) {
    const core::AllocationResult r =
        core::minimize_cost(sites, policies, demand, lambda);
    benchmark::DoNotOptimize(r.predicted_cost);
  }
  state.counters["sites"] = static_cast<double>(sites.size());
}
BENCHMARK(BM_MoreSitesScaling)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!write_solver_bench_json()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
