// Section IV-C claim — "for a large system with 3 data centers and 5
// different pricing levels, lp_solve consumes at most 2 millisecond in an
// invocation period ... to determine the optimal workload allocations with
// up to 1e8 requests."
//
// This google-benchmark target times our branch-and-bound MILP on exactly
// that problem shape (and on the step-2 throughput maximization), across
// workload magnitudes.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/bill_capper.hpp"
#include "core/cost_minimizer.hpp"
#include "core/throughput_maximizer.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace {

using namespace billcap;

struct Fixture {
  std::vector<datacenter::DataCenter> sites =
      datacenter::paper_datacenters();
  std::vector<market::PricingPolicy> policies = market::paper_policies(1);
  std::vector<double> demand = {228.0, 182.0, 172.0};
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void BM_CostMinimization(benchmark::State& state) {
  const Fixture& f = fixture();
  const double lambda = static_cast<double>(state.range(0)) * 1e9;
  for (auto _ : state) {
    const core::AllocationResult r =
        core::minimize_cost(f.sites, f.policies, f.demand, lambda);
    benchmark::DoNotOptimize(r.predicted_cost);
  }
}
BENCHMARK(BM_CostMinimization)->Arg(1)->Arg(100)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_ThroughputMaximization(benchmark::State& state) {
  const Fixture& f = fixture();
  const double lambda = static_cast<double>(state.range(0)) * 1e9;
  for (auto _ : state) {
    const core::AllocationResult r = core::maximize_throughput(
        f.sites, f.policies, f.demand, lambda, /*cost_budget=*/1200.0);
    benchmark::DoNotOptimize(r.total_lambda);
  }
}
BENCHMARK(BM_ThroughputMaximization)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_BillCapperDecide(benchmark::State& state) {
  const Fixture& f = fixture();
  const core::BillCapper capper(f.sites, f.policies);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const core::CappingOutcome outcome =
        capper.decide(8e11, 2e11, f.demand, budget);
    benchmark::DoNotOptimize(outcome.served_ordinary);
  }
}
// Ample budget = step 1 only; tight = both steps; punishing = all three
// solves (min, max-throughput, premium-only min).
BENCHMARK(BM_BillCapperDecide)->Arg(10'000)->Arg(1'500)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_MoreSitesScaling(benchmark::State& state) {
  // Complexity is exponential in the binaries (sites x price levels);
  // replicate the catalog to grow the instance.
  const auto base = datacenter::paper_datacenters();
  const auto base_policies = market::paper_policies(1);
  std::vector<datacenter::DataCenter> sites;
  std::vector<market::PricingPolicy> policies;
  std::vector<double> demand;
  const int replicas = static_cast<int>(state.range(0));
  for (int rep = 0; rep < replicas; ++rep) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      sites.push_back(base[i]);
      policies.push_back(base_policies[i]);
      demand.push_back(170.0 + 20.0 * static_cast<double>(rep));
    }
  }
  const double lambda = 4e11 * replicas;
  for (auto _ : state) {
    const core::AllocationResult r =
        core::minimize_cost(sites, policies, demand, lambda);
    benchmark::DoNotOptimize(r.predicted_cost);
  }
  state.counters["sites"] = static_cast<double>(sites.size());
}
BENCHMARK(BM_MoreSitesScaling)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
