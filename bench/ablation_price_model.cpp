// Ablation — isolating the price-maker contribution. The Min-Only
// baselines differ from Cost Capping in TWO ways (flat-price belief AND
// server-only power). This ablation builds the intermediate strategy: a
// price taker with the FULL power model, so the remaining gap to Cost
// Capping is purely the value of modeling the locational step prices.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_minimizer.hpp"
#include "core/cost_model.hpp"
#include "core/simulator.hpp"

namespace {

using namespace billcap;

/// A price taker with the full power model: believes the flat per-site
/// average price, sees true server+network+cooling power and true caps.
double run_price_taker_month(const core::Simulator& sim) {
  const auto& sites = sim.sites();
  const auto& policies = sim.policies();
  double total = 0.0;
  for (std::size_t hour = 0; hour < sim.evaluation_trace().hours(); ++hour) {
    std::vector<double> demand;
    for (const auto& series : sim.background_demand())
      demand.push_back(series[hour]);
    std::vector<core::SiteModel> models;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      models.push_back(core::make_site_model(
          sites[i], market::PricingPolicy::flat(policies[i].average_price()),
          /*other_demand_mw=*/0.0, /*model_cooling_network=*/true));
    }
    const double lambda =
        std::min(sim.evaluation_trace().at(hour), core::system_capacity(models));
    const core::AllocationResult r =
        core::minimize_cost_over_models(models, lambda);
    if (!r.ok()) continue;
    total += core::evaluate_allocation(sites, policies, demand,
                                       r.lambda_vector())
                 .total_cost;
  }
  return total;
}

}  // namespace

int main() {
  bench::heading("Ablation: price-taker vs price-maker (both with the full "
                 "power model)");
  util::Table table({"policy", "price maker $ (CostCapping)",
                     "price taker $", "price awareness saves"});
  util::Csv csv({"policy", "price_maker_cost", "price_taker_cost"});

  for (int policy : {1, 2, 3}) {
    core::SimulationConfig config;
    config.policy_level = policy;
    config.enforce_budget = false;
    const core::Simulator sim(config);

    const double maker =
        sim.run(core::Strategy::kCostCapping).total_cost;
    const double taker = run_price_taker_month(sim);

    table.add_row({"Policy" + std::to_string(policy),
                   util::format_fixed(maker, 0),
                   util::format_fixed(taker, 0),
                   util::format_fixed(100.0 * (taker - maker) / taker, 2) +
                       "%"});
    csv.add_numeric_row(
        {static_cast<double>(policy), maker, taker});
  }
  table.print(std::cout);
  std::printf(
      "\nThis is the paper's headline mechanism in isolation: treating the\n"
      "data centers as price takers leaves money on the table, and the gap\n"
      "widens as the pricing policy steepens (Policies 2-3).\n");
  bench::save_csv(csv, "ablation_price_model");
  return 0;
}
