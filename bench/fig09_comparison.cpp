// Figure 9 — Cost and throughput under a stringent monthly budget,
// Cost Capping vs Min-Only (Avg) and Min-Only (Low). Costs are normalized
// against the budget (>1 = violation), throughput against Min-Only (which
// serves everything regardless of cost).

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace billcap;
  using core::Strategy;

  const double budget = 1.0e6;  // calibrated stringent budget (EXPERIMENTS.md)
  core::SimulationConfig config;
  config.monthly_budget = budget;
  const core::Simulator sim(config);

  const core::MonthlyResult cc = sim.run(Strategy::kCostCapping);
  const core::MonthlyResult avg = sim.run(Strategy::kMinOnlyAvg);
  const core::MonthlyResult low = sim.run(Strategy::kMinOnlyLow);

  bench::heading("Fig. 9: normalized cost and throughput, $1.0M budget");
  util::Table table({"strategy", "cost / budget", "premium throughput",
                     "ordinary throughput"});
  util::Csv csv({"strategy_id", "cost_over_budget", "premium_ratio",
                 "ordinary_ratio"});
  int id = 0;
  for (const auto* r : {&cc, &avg, &low}) {
    table.add_row({core::to_string(r->strategy),
                   util::format_fixed(r->budget_utilization(), 3),
                   util::format_fixed(r->premium_throughput_ratio(), 3),
                   util::format_fixed(r->ordinary_throughput_ratio(), 3)});
    csv.add_numeric_row({static_cast<double>(id++), r->budget_utilization(),
                         r->premium_throughput_ratio(),
                         r->ordinary_throughput_ratio()});
  }
  table.print(std::cout);

  std::printf(
      "\nShape check (paper Fig. 9): Min-Only exceeds the budget (+23.3%% /"
      " +39.5%% there) while serving 100%%;\nCost Capping keeps the bill at"
      " ~<=1.0x budget, 100%% premium, best-effort ordinary (80.3%% there).\n"
      "Measured: CC %.1f%% of budget, Avg +%.1f%%, Low +%.1f%%; CC ordinary"
      " %.1f%%.\n",
      100.0 * cc.budget_utilization(),
      100.0 * (avg.budget_utilization() - 1.0),
      100.0 * (low.budget_utilization() - 1.0),
      100.0 * cc.ordinary_throughput_ratio());
  bench::save_csv(csv, "fig09_comparison");
  return 0;
}
