// Figure 3 — Hourly electricity cost of Cost Capping vs Min-Only (Avg) and
// Min-Only (Low) over the evaluation month (Policy 1, no budget stress:
// this isolates step 1, cost minimization).

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "util/calendar.hpp"

int main() {
  using namespace billcap;
  using core::Strategy;

  core::SimulationConfig config;
  config.enforce_budget = false;  // step 1 only, like the paper's Fig. 3
  const core::Simulator sim(config);

  const core::MonthlyResult cc = sim.run(Strategy::kCostCapping);
  const core::MonthlyResult avg = sim.run(Strategy::kMinOnlyAvg);
  const core::MonthlyResult low = sim.run(Strategy::kMinOnlyLow);

  bench::heading("Fig. 3: hourly electricity cost (one row per day shown)");
  util::Table table({"hour", "day", "CostCapping $", "MinOnly(Avg) $",
                     "MinOnly(Low) $"});
  for (std::size_t h = 12; h < cc.hours.size(); h += 24) {
    table.add_row({std::to_string(h),
                   util::hour_label(sim.history_trace().hours() + h),
                   util::format_fixed(cc.hours[h].cost, 1),
                   util::format_fixed(avg.hours[h].cost, 1),
                   util::format_fixed(low.hours[h].cost, 1)});
  }
  table.print(std::cout);

  const double save_avg = 100.0 * (avg.total_cost - cc.total_cost) / avg.total_cost;
  const double save_low = 100.0 * (low.total_cost - cc.total_cost) / low.total_cost;
  std::printf(
      "\nmonthly: CostCapping $%.0f | MinOnly(Avg) $%.0f | MinOnly(Low) $%.0f\n"
      "Cost Capping saves (%.1f%%, %.1f%%) vs (Avg, Low)  [paper: (17.9%%, 33.5%%)]\n",
      cc.total_cost, avg.total_cost, low.total_cost, save_avg, save_low);

  util::Csv csv({"hour", "cost_capping", "min_only_avg", "min_only_low",
                 "arrivals"});
  for (std::size_t h = 0; h < cc.hours.size(); ++h) {
    csv.add_numeric_row({static_cast<double>(h), cc.hours[h].cost,
                         avg.hours[h].cost, low.hours[h].cost,
                         cc.hours[h].arrivals});
  }
  bench::save_csv(csv, "fig03_hourly_cost");
  return 0;
}
