// Resilience sweep — what does operating through injected faults cost?
//
// Sweeps a per-site-hour fault rate applied simultaneously to site
// outages, stale market feeds and background-demand shocks, re-runs the
// Cost Capping month at each rate (same seed, independent fault streams)
// and reports cost, throughput and degradation relative to the
// fault-free run. The point of the graceful-degradation ladder
// (optimal -> incumbent -> greedy heuristic -> premium-only) is that the
// month always *completes* and premium traffic stays near 100 % even as
// the fault rate climbs; the price shows up as extra cost and shed
// ordinary traffic, not as a crashed control loop.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace billcap;

  const double rates[] = {0.0, 0.001, 0.002, 0.005, 0.01, 0.02};

  bench::heading("Resilience: Cost Capping under injected faults");
  util::Table table({"fault rate", "cost $", "vs fault-free", "premium",
                     "ordinary", "degraded h", "outage h", "stale h"});
  util::Csv csv({"fault_rate", "total_cost", "cost_vs_fault_free",
                 "premium_ratio", "ordinary_ratio", "degraded_hours",
                 "incumbent_hours", "heuristic_hours", "outage_hours",
                 "stale_hours"});

  double baseline_cost = 0.0;
  for (const double rate : rates) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.outage_rate = rate;
    config.fault_rates.stale_rate = rate;
    config.fault_rates.shock_rate = rate;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (rate == 0.0) baseline_cost = r.total_cost;
    const double vs_baseline =
        baseline_cost > 0.0 ? r.total_cost / baseline_cost : 1.0;
    table.add_row(
        {util::format_fixed(rate, 3), util::format_fixed(r.total_cost, 0),
         util::format_fixed(vs_baseline, 4),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
         std::to_string(r.degraded_hours), std::to_string(r.outage_hours),
         std::to_string(r.stale_hours)});
    csv.add_numeric_row({rate, r.total_cost, vs_baseline,
                         r.premium_throughput_ratio(),
                         r.ordinary_throughput_ratio(),
                         static_cast<double>(r.degraded_hours),
                         static_cast<double>(r.incumbent_hours),
                         static_cast<double>(r.heuristic_hours),
                         static_cast<double>(r.outage_hours),
                         static_cast<double>(r.stale_hours)});
  }
  table.print(std::cout);
  bench::save_csv(csv, "resilience_sweep");
  return 0;
}
