// Resilience sweep — what does operating through injected faults cost?
//
// Three experiments, all on the same seed:
//
//  1. Fault-rate sweep: a per-site-hour fault rate applied simultaneously
//     to site outages, stale market feeds and background-demand shocks;
//     re-runs the Cost Capping month at each rate and reports cost,
//     throughput and degradation relative to the fault-free run. The
//     point of the graceful-degradation ladder (optimal -> incumbent ->
//     greedy heuristic -> premium-only) is that the month always
//     *completes* and premium traffic stays near 100 % even as the fault
//     rate climbs; the price shows up as extra cost and shed ordinary
//     traffic, not as a crashed control loop.
//
//  2. Feed recovery: with the stale-feed rate pinned, sweeps the
//     MarketFeed retry-success probability from 0 (legacy frozen feed:
//     plan every stale hour on last-known prices) upward. Each successful
//     backoff retry re-syncs the believed market hour mid-interval, so
//     stale-planned hours fall strictly monotonically with retry quality.
//
//  3. Crash recovery: sweeps an injected controller-crash rate and runs
//     the month through the durable checkpoint (`run_resumable`), dying
//     and resuming in-process at every planned crash. The recovered month
//     must cost exactly what the uninterrupted month costs — crashes are
//     free in outcome, paid only in restart latency.

#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace billcap;

  const double rates[] = {0.0, 0.001, 0.002, 0.005, 0.01, 0.02};

  bench::heading("Resilience: Cost Capping under injected faults");
  util::Table table({"fault rate", "cost $", "vs fault-free", "premium",
                     "ordinary", "degraded h", "outage h", "stale h"});
  util::Csv csv({"fault_rate", "total_cost", "cost_vs_fault_free",
                 "premium_ratio", "ordinary_ratio", "degraded_hours",
                 "incumbent_hours", "heuristic_hours", "outage_hours",
                 "stale_hours"});

  double baseline_cost = 0.0;
  for (const double rate : rates) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.outage_rate = rate;
    config.fault_rates.stale_rate = rate;
    config.fault_rates.shock_rate = rate;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (rate == 0.0) baseline_cost = r.total_cost;
    const double vs_baseline =
        baseline_cost > 0.0 ? r.total_cost / baseline_cost : 1.0;
    table.add_row(
        {util::format_fixed(rate, 3), util::format_fixed(r.total_cost, 0),
         util::format_fixed(vs_baseline, 4),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
         std::to_string(r.degraded_hours), std::to_string(r.outage_hours),
         std::to_string(r.stale_hours)});
    csv.add_numeric_row({rate, r.total_cost, vs_baseline,
                         r.premium_throughput_ratio(),
                         r.ordinary_throughput_ratio(),
                         static_cast<double>(r.degraded_hours),
                         static_cast<double>(r.incumbent_hours),
                         static_cast<double>(r.heuristic_hours),
                         static_cast<double>(r.outage_hours),
                         static_cast<double>(r.stale_hours)});
  }
  table.print(std::cout);
  bench::save_csv(csv, "resilience_sweep");

  // ---- 2. Frozen feed vs retrying feed with exponential backoff --------
  //
  // stale_rate is pinned high enough that the month sees several stale
  // intervals; only the retry-success probability varies. prob = 0 is the
  // legacy frozen feed (bit-identical to the pre-MarketFeed code path).
  bench::heading("Feed recovery: frozen feed vs exponential backoff");
  util::Table feed_table({"retry prob", "stale h", "vs frozen", "retries",
                          "recovered h", "cost $", "ordinary"});
  util::Csv feed_csv({"retry_prob", "stale_hours", "stale_vs_frozen",
                      "feed_retry_attempts", "feed_recovered_hours",
                      "total_cost", "ordinary_ratio"});
  const double retry_probs[] = {0.0, 0.3, 0.7, 0.9};
  std::size_t frozen_stale_hours = 0;
  bool backoff_strictly_better = true;
  for (const double prob : retry_probs) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.stale_rate = 0.05;
    config.market_feed.retry_success_prob = prob;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (prob == 0.0) frozen_stale_hours = r.stale_hours;
    if (prob > 0.0 && r.stale_hours >= frozen_stale_hours)
      backoff_strictly_better = false;
    const double vs_frozen =
        frozen_stale_hours > 0
            ? static_cast<double>(r.stale_hours) /
                  static_cast<double>(frozen_stale_hours)
            : 1.0;
    feed_table.add_row(
        {util::format_fixed(prob, 1), std::to_string(r.stale_hours),
         util::format_fixed(vs_frozen, 3),
         std::to_string(r.feed_retry_attempts),
         std::to_string(r.feed_recovered_hours),
         util::format_fixed(r.total_cost, 0),
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) +
             "%"});
    feed_csv.add_numeric_row({prob, static_cast<double>(r.stale_hours),
                              vs_frozen,
                              static_cast<double>(r.feed_retry_attempts),
                              static_cast<double>(r.feed_recovered_hours),
                              r.total_cost, r.ordinary_throughput_ratio()});
  }
  feed_table.print(std::cout);
  bench::save_csv(feed_csv, "resilience_feed_recovery");
  std::printf("[check] backoff recovery strictly reduces stale hours: %s\n",
              backoff_strictly_better ? "yes" : "NO");

  // ---- 3. Controller crashes survived via the durable checkpoint -------
  //
  // Every planned crash kills the control loop in-process; run_resumable
  // restarts it from the checkpoint file until the month completes. The
  // reference run is the same config through plain run() (which ignores
  // crashes): identical cost proves recovery is lossless.
  bench::heading("Crash recovery: checkpointed month vs uninterrupted");
  util::Table crash_table({"crash rate", "crashes", "cost $", "cost delta",
                           "premium", "ordinary"});
  util::Csv crash_csv({"crash_rate", "crash_recoveries", "total_cost",
                       "cost_delta_vs_uninterrupted", "premium_ratio",
                       "ordinary_ratio"});
  const std::string ck_path = "resilience_sweep.checkpoint";
  for (const double crash_rate : {0.0, 0.01, 0.05, 0.1}) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.stale_rate = 0.02;
    config.fault_rates.outage_rate = 0.002;
    config.fault_rates.crash_rate = crash_rate;
    config.market_feed.retry_success_prob = 0.5;
    const core::Simulator sim(config);
    const core::MonthlyResult reference =
        sim.run(core::Strategy::kCostCapping);
    std::remove(ck_path.c_str());
    core::Simulator::ResumableOutcome outcome =
        sim.run_resumable(core::Strategy::kCostCapping, ck_path, false);
    while (outcome.crashed)
      outcome =
          sim.run_resumable(core::Strategy::kCostCapping, ck_path, true);
    std::remove(ck_path.c_str());
    const core::MonthlyResult& r = outcome.result;
    const double delta = r.total_cost - reference.total_cost;
    crash_table.add_row(
        {util::format_fixed(crash_rate, 2),
         std::to_string(r.crash_recoveries),
         util::format_fixed(r.total_cost, 0), util::format_fixed(delta, 6),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) +
             "%"});
    crash_csv.add_numeric_row({crash_rate,
                               static_cast<double>(r.crash_recoveries),
                               r.total_cost, delta,
                               r.premium_throughput_ratio(),
                               r.ordinary_throughput_ratio()});
  }
  crash_table.print(std::cout);
  bench::save_csv(crash_csv, "resilience_crash_recovery");
  return backoff_strictly_better ? 0 : 1;
}
