// Resilience sweep — what does operating through injected faults cost?
//
// Three experiments, all on the same seed:
//
//  1. Fault-rate sweep: a per-site-hour fault rate applied simultaneously
//     to site outages, stale market feeds and background-demand shocks;
//     re-runs the Cost Capping month at each rate and reports cost,
//     throughput and degradation relative to the fault-free run. The
//     point of the graceful-degradation ladder (optimal -> incumbent ->
//     greedy heuristic -> premium-only) is that the month always
//     *completes* and premium traffic stays near 100 % even as the fault
//     rate climbs; the price shows up as extra cost and shed ordinary
//     traffic, not as a crashed control loop.
//
//  2. Feed recovery: with the stale-feed rate pinned, sweeps the
//     MarketFeed retry-success probability from 0 (legacy frozen feed:
//     plan every stale hour on last-known prices) upward. Each successful
//     backoff retry re-syncs the believed market hour mid-interval, so
//     stale-planned hours fall strictly monotonically with retry quality.
//
//  3. Crash recovery: sweeps an injected controller-crash rate and runs
//     the month through the durable checkpoint (`run_resumable`), dying
//     and resuming in-process at every planned crash. The recovered month
//     must cost exactly what the uninterrupted month costs — crashes are
//     free in outcome, paid only in restart latency.
//
//  4. Supervised kill-storms: the watchdog's full restart ladder (budget,
//     exponential backoff, escalation to the premium-only standby) driven
//     in-process through the real Supervisor with hooked-out process
//     plumbing. Unlike experiment 3, exit storms make *zero* checkpoint
//     progress, so persistent ones force escalation — and escalation is
//     the one recovery mode that is NOT free: every standby-chunk hour
//     sheds all ordinary traffic. The sweep prices that.
//
//  5. Price shock: a month whose GRID is faulted — a regional heat wave
//     multiplies one load bus's background demand, then a congestion
//     spike derates the one thermally limited line — run once planning
//     open-loop on the static curves and once with the damped closed
//     loop. Both arms bill at the realized coupled LMPs, so the delta is
//     purely what seeing the shocked prices at planning time is worth.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/simulator.hpp"
#include "core/supervisor.hpp"
#include "util/journal.hpp"

int main() {
  using namespace billcap;

  const double rates[] = {0.0, 0.001, 0.002, 0.005, 0.01, 0.02};

  bench::heading("Resilience: Cost Capping under injected faults");
  util::Table table({"fault rate", "cost $", "vs fault-free", "premium",
                     "ordinary", "degraded h", "outage h", "stale h"});
  util::Csv csv({"fault_rate", "total_cost", "cost_vs_fault_free",
                 "premium_ratio", "ordinary_ratio", "degraded_hours",
                 "incumbent_hours", "heuristic_hours", "outage_hours",
                 "stale_hours"});

  double baseline_cost = 0.0;
  for (const double rate : rates) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.outage_rate = rate;
    config.fault_rates.stale_rate = rate;
    config.fault_rates.shock_rate = rate;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (rate == 0.0) baseline_cost = r.total_cost;
    const double vs_baseline =
        baseline_cost > 0.0 ? r.total_cost / baseline_cost : 1.0;
    table.add_row(
        {util::format_fixed(rate, 3), util::format_fixed(r.total_cost, 0),
         util::format_fixed(vs_baseline, 4),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%",
         std::to_string(r.degraded_hours), std::to_string(r.outage_hours),
         std::to_string(r.stale_hours)});
    csv.add_numeric_row({rate, r.total_cost, vs_baseline,
                         r.premium_throughput_ratio(),
                         r.ordinary_throughput_ratio(),
                         static_cast<double>(r.degraded_hours),
                         static_cast<double>(r.incumbent_hours),
                         static_cast<double>(r.heuristic_hours),
                         static_cast<double>(r.outage_hours),
                         static_cast<double>(r.stale_hours)});
  }
  table.print(std::cout);
  bench::save_csv(csv, "resilience_sweep");

  // ---- 2. Frozen feed vs retrying feed with exponential backoff --------
  //
  // stale_rate is pinned high enough that the month sees several stale
  // intervals; only the retry-success probability varies. prob = 0 is the
  // legacy frozen feed (bit-identical to the pre-MarketFeed code path).
  bench::heading("Feed recovery: frozen feed vs exponential backoff");
  util::Table feed_table({"retry prob", "stale h", "vs frozen", "retries",
                          "recovered h", "cost $", "ordinary"});
  util::Csv feed_csv({"retry_prob", "stale_hours", "stale_vs_frozen",
                      "feed_retry_attempts", "feed_recovered_hours",
                      "total_cost", "ordinary_ratio"});
  const double retry_probs[] = {0.0, 0.3, 0.7, 0.9};
  std::size_t frozen_stale_hours = 0;
  bool backoff_strictly_better = true;
  for (const double prob : retry_probs) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.stale_rate = 0.05;
    config.market_feed.retry_success_prob = prob;
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (prob == 0.0) frozen_stale_hours = r.stale_hours;
    if (prob > 0.0 && r.stale_hours >= frozen_stale_hours)
      backoff_strictly_better = false;
    const double vs_frozen =
        frozen_stale_hours > 0
            ? static_cast<double>(r.stale_hours) /
                  static_cast<double>(frozen_stale_hours)
            : 1.0;
    feed_table.add_row(
        {util::format_fixed(prob, 1), std::to_string(r.stale_hours),
         util::format_fixed(vs_frozen, 3),
         std::to_string(r.feed_retry_attempts),
         std::to_string(r.feed_recovered_hours),
         util::format_fixed(r.total_cost, 0),
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) +
             "%"});
    feed_csv.add_numeric_row({prob, static_cast<double>(r.stale_hours),
                              vs_frozen,
                              static_cast<double>(r.feed_retry_attempts),
                              static_cast<double>(r.feed_recovered_hours),
                              r.total_cost, r.ordinary_throughput_ratio()});
  }
  feed_table.print(std::cout);
  bench::save_csv(feed_csv, "resilience_feed_recovery");
  std::printf("[check] backoff recovery strictly reduces stale hours: %s\n",
              backoff_strictly_better ? "yes" : "NO");

  // ---- 3. Controller crashes survived via the durable checkpoint -------
  //
  // Every planned crash kills the control loop in-process; run_resumable
  // restarts it from the checkpoint file until the month completes. The
  // reference run is the same config through plain run() (which ignores
  // crashes): identical cost proves recovery is lossless.
  bench::heading("Crash recovery: checkpointed month vs uninterrupted");
  util::Table crash_table({"crash rate", "crashes", "cost $", "cost delta",
                           "premium", "ordinary"});
  util::Csv crash_csv({"crash_rate", "crash_recoveries", "total_cost",
                       "cost_delta_vs_uninterrupted", "premium_ratio",
                       "ordinary_ratio"});
  const std::string ck_path = "resilience_sweep.checkpoint";
  for (const double crash_rate : {0.0, 0.01, 0.05, 0.1}) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.fault_rates.stale_rate = 0.02;
    config.fault_rates.outage_rate = 0.002;
    config.fault_rates.crash_rate = crash_rate;
    config.market_feed.retry_success_prob = 0.5;
    const core::Simulator sim(config);
    const core::MonthlyResult reference =
        sim.run(core::Strategy::kCostCapping);
    std::remove(ck_path.c_str());
    core::Simulator::ResumableOutcome outcome =
        sim.run_resumable(core::Strategy::kCostCapping, ck_path, false);
    while (outcome.crashed)
      outcome =
          sim.run_resumable(core::Strategy::kCostCapping, ck_path, true);
    std::remove(ck_path.c_str());
    const core::MonthlyResult& r = outcome.result;
    const double delta = r.total_cost - reference.total_cost;
    crash_table.add_row(
        {util::format_fixed(crash_rate, 2),
         std::to_string(r.crash_recoveries),
         util::format_fixed(r.total_cost, 0), util::format_fixed(delta, 6),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) +
             "%"});
    crash_csv.add_numeric_row({crash_rate,
                               static_cast<double>(r.crash_recoveries),
                               r.total_cost, delta,
                               r.premium_throughput_ratio(),
                               r.ordinary_throughput_ratio()});
  }
  crash_table.print(std::cout);
  bench::save_csv(crash_csv, "resilience_crash_recovery");

  // ---- 4. Supervised kill-storms: what does escalation cost? -----------
  //
  // Each scenario plants exit storms (repeated deaths with no checkpoint
  // progress) and runs the month under the real Supervisor; the hooks run
  // the children in-process via run_resumable and synthesize their wait
  // statuses. A drainable storm is survived by restarts alone (cost delta
  // 0); a storm longer than the escalation threshold triggers a 4-hour
  // premium-only standby chunk whose shed ordinary traffic is the price
  // of staying alive.
  bench::heading("Supervised kill-storms: restart ladder and escalation");
  struct StormScenario {
    const char* label;
    std::vector<core::FaultPlan::ExitStorm> storms;
  };
  const StormScenario scenarios[] = {
      {"none", {}},
      {"2 deaths @h100", {{100, 2}}},
      {"6 deaths @h100", {{100, 6}}},
      {"6 @h100 + 6 @h300", {{100, 6}, {300, 6}}},
  };
  util::Table storm_table({"storm plan", "deaths", "restarts", "standby runs",
                           "premium-only h", "backoff ms", "cost delta",
                           "premium", "ordinary"});
  util::Csv storm_csv({"scenario", "deaths", "restarts", "standby_runs",
                       "premium_only_hours", "backoff_ms", "cost_delta",
                       "premium_ratio", "ordinary_ratio"});
  bool supervised_all_complete = true;
  core::SimulationConfig storm_base;
  storm_base.monthly_budget = 1.5e6;
  const core::MonthlyResult reference =
      core::Simulator(storm_base).run(core::Strategy::kCostCapping);
  for (const StormScenario& scenario : scenarios) {
    core::SimulationConfig config = storm_base;
    config.fault_plan.exit_storms = scenario.storms;
    const core::Simulator primary(config);
    core::SimulationConfig standby_config = config;
    standby_config.standby = true;
    const core::Simulator standby(standby_config);

    core::SupervisorOptions options;
    options.escalate_after = 3;
    options.standby_hours = 4;
    const std::size_t keep_generations = 3;

    // In-process "children": crashed -> signalled, stopped -> exit 4,
    // done -> exit 0, in the waitpid encoding classify_wait_status reads.
    double clock_s = 0.0;
    double backoff_ms = 0.0;
    core::SuperviseHooks hooks;
    hooks.run = [&](const core::ChildSpec&, bool run_standby) {
      core::Simulator::ResumeControls controls;
      controls.keep_generations = keep_generations;
      if (run_standby) controls.max_hours = options.standby_hours;
      const core::Simulator::ResumableOutcome outcome =
          (run_standby ? standby : primary)
              .run_resumable(core::Strategy::kCostCapping, ck_path,
                             /*resume=*/true, {}, controls);
#if defined(__unix__) || defined(__APPLE__)
      if (outcome.crashed) return SIGKILL;  // a wait status, not an exit code
      return outcome.stopped ? core::kExitStopped << 8 : 0;
#else
      if (outcome.crashed) return core::kExitRuntimeError;
      return outcome.stopped ? core::kExitStopped : 0;
#endif
    };
    hooks.now_s = [&] { return clock_s += 1.0; };
    hooks.sleep_ms = [&](double ms) { backoff_ms += ms; };
    hooks.log = [](const std::string&) {};
    hooks.checkpoint_hour = [&] {
      return core::probe_checkpoint_hour(ck_path, keep_generations);
    };

    for (std::size_t g = 0; g < keep_generations; ++g)
      std::remove(
          util::Journal::generation_path(ck_path, g).c_str());
    core::Supervisor supervisor(options, {"in-process", {}},
                                {"in-process", {"--standby"}}, ck_path,
                                keep_generations, hooks);
    const core::SuperviseReport report = supervisor.run();
    const core::CheckpointState final_state = core::load_checkpoint(ck_path);
    for (std::size_t g = 0; g < keep_generations; ++g)
      std::remove(
          util::Journal::generation_path(ck_path, g).c_str());

    const core::MonthlyResult& r = final_state.partial;
    supervised_all_complete &= report.exit_code == core::kExitSuccess &&
                               r.hours.size() == reference.hours.size();
    std::size_t premium_only_hours = 0;
    for (const core::HourRecord& h : r.hours)
      if (h.used_heuristic) ++premium_only_hours;
    const double delta = r.total_cost - reference.total_cost;
    storm_table.add_row(
        {scenario.label, std::to_string(r.crash_recoveries),
         std::to_string(report.restarts), std::to_string(report.standby_runs),
         std::to_string(premium_only_hours), util::format_fixed(backoff_ms, 0),
         util::format_fixed(delta, 2),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%"});
    storm_csv.add_row(
        {scenario.label, std::to_string(r.crash_recoveries),
         std::to_string(report.restarts), std::to_string(report.standby_runs),
         std::to_string(premium_only_hours), util::format_double(backoff_ms),
         util::format_double(delta),
         util::format_double(r.premium_throughput_ratio()),
         util::format_double(r.ordinary_throughput_ratio())});
  }
  storm_table.print(std::cout);
  bench::save_csv(storm_csv, "resilience_supervised_storms");
  std::printf("[check] every supervised kill-storm month completed: %s\n",
              supervised_all_complete ? "yes" : "NO");

  // ---- 5. Price shock: open-loop planning vs the damped closed loop ----
  //
  // Grid-side faults only: a 72 h heat wave at load bus B (background
  // demand x1.6, the ISO's problem, not the fleet's) followed by a 72 h
  // congestion spike derating the one limited line (D-E) to 60 %. The
  // open-loop arm keeps planning on the static tariff curves and is
  // billed at the LMPs the shocked grid actually clears; the closed-loop
  // arm re-derives its curves from those LMPs every hour (damping ladder
  // on) and dodges the expensive buses while the shock lasts.
  bench::heading("Price shock: open-loop planning vs damped closed loop");
  struct ShockArm {
    const char* label;
    bool grid_faulted;
    bool plan_closed_loop;
  };
  const ShockArm arms[] = {
      {"no grid faults", false, true},
      {"shocked, open-loop plan", true, false},
      {"shocked, closed-loop damped", true, true},
  };
  util::Table shock_table({"arm", "cost $", "vs calm", "closed h",
                           "fallback h", "oscill", "diverged", "degraded h",
                           "premium", "ordinary"});
  util::Csv shock_csv({"arm", "total_cost", "cost_vs_calm",
                       "closed_loop_hours", "fallback_hours",
                       "oscillation_hours", "diverged_hours",
                       "degraded_hours", "premium_ratio", "ordinary_ratio"});
  double calm_cost = 0.0;
  double open_loop_cost = 0.0;
  double closed_loop_cost = 0.0;
  for (const ShockArm& arm : arms) {
    core::SimulationConfig config;
    config.monthly_budget = 1.5e6;
    config.market_coupler.enabled = true;
    config.market_coupler.plan_closed_loop = arm.plan_closed_loop;
    // The tight 1.5e6 budget is a harder fixed-point problem than the
    // default month, so the damped arms run the full ladder from hour 0
    // rather than escalating into it.
    config.market_coupler.damping = core::DampingMode::kFull;
    if (arm.grid_faulted) {
      config.fault_plan.grid_demand_shocks.push_back(
          {/*bus=*/1, /*start_hour=*/200, /*duration_hours=*/72,
           /*multiplier=*/1.6});
      config.fault_plan.congestion_spikes.push_back(
          {/*line=*/5, /*start_hour=*/400, /*duration_hours=*/72,
           /*limit_factor=*/0.6});
    }
    const core::MonthlyResult r =
        core::Simulator(config).run(core::Strategy::kCostCapping);
    if (!arm.grid_faulted) calm_cost = r.total_cost;
    if (arm.grid_faulted && !arm.plan_closed_loop)
      open_loop_cost = r.total_cost;
    if (arm.grid_faulted && arm.plan_closed_loop)
      closed_loop_cost = r.total_cost;
    const std::size_t oscill = r.failure_tally[static_cast<std::size_t>(
        core::FailureReason::kPriceOscillation)];
    const std::size_t diverged = r.failure_tally[static_cast<std::size_t>(
        core::FailureReason::kCouplerDiverged)];
    const double vs_calm = calm_cost > 0.0 ? r.total_cost / calm_cost : 1.0;
    shock_table.add_row(
        {arm.label, util::format_fixed(r.total_cost, 0),
         util::format_fixed(vs_calm, 4), std::to_string(r.closed_loop_hours),
         std::to_string(r.coupler_fallback_hours), std::to_string(oscill),
         std::to_string(diverged), std::to_string(r.degraded_hours),
         util::format_fixed(100.0 * r.premium_throughput_ratio(), 2) + "%",
         util::format_fixed(100.0 * r.ordinary_throughput_ratio(), 2) + "%"});
    shock_csv.add_row(
        {arm.label, util::format_double(r.total_cost),
         util::format_double(vs_calm), std::to_string(r.closed_loop_hours),
         std::to_string(r.coupler_fallback_hours), std::to_string(oscill),
         std::to_string(diverged), std::to_string(r.degraded_hours),
         util::format_double(r.premium_throughput_ratio()),
         util::format_double(r.ordinary_throughput_ratio())});
  }
  shock_table.print(std::cout);
  bench::save_csv(shock_csv, "resilience_price_shock");
  const bool shock_planning_pays = closed_loop_cost <= open_loop_cost;
  std::printf("[check] closed-loop planning through the shock costs no more "
              "than open-loop: %s\n",
              shock_planning_pays ? "yes" : "NO");

  return (backoff_strictly_better && supervised_all_complete &&
          shock_planning_pays)
             ? billcap::core::kExitSuccess
             : billcap::core::kExitRuntimeError;
}
