// Fleet sweep — the 100-site scale-out benchmark for FleetController.
//
// Runs a Monte-Carlo batch of scenario-months (default 1000) over a
// 100-site / 20-region fleet, twice: once serially (no thread pool) and
// once with chunk solves sharded across a util::ThreadPool. Every month
// carries a rotating fault ladder — a RegionOutage, a ChunkSolverStall,
// a ChunkArenaSqueeze and a site Outage, each walking across the fleet
// with the month index — so the whole quarantine/degradation surface is
// exercised, not just the happy path.
//
// The sweep reports months/sec for both passes and asserts the fleet
// contract:
//
//   1. zero fleet-hour aborts — no month ever throws out of run_month;
//      chunk trouble degrades locally, it never poisons the hour;
//   2. the serial and threaded passes are bitwise identical — the FNV
//      digest over every month's fleet_month_csv must match exactly;
//   3. (when --min-speedup is given) the threaded pass beats the serial
//      pass by at least that factor.
//
// Results land in BENCH_fleet.json next to the binary (archived at the
// repo root by tools/ci.sh). Flags: --months N, --hours H, --threads T,
// --shard months|chunks (which axis the threaded pass fans out: whole
// scenario-months as independent pool tasks, or each month's 20 region
// chunks via the FleetController's own dispatch), --min-speedup X, and
// --smoke for the small ctest soak configuration.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/exit_codes.hpp"
#include "core/fleet.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace billcap;

constexpr std::size_t kSites = 100;
constexpr std::size_t kSitesPerRegion = 5;  // 20 regions

struct Fleet {
  std::vector<datacenter::DataCenter> sites;
  std::vector<market::PricingPolicy> policies;
  std::vector<core::Region> regions;
};

Fleet build_fleet() {
  Fleet fleet;
  const auto base_sites = datacenter::paper_datacenters();
  const auto base_policies = market::paper_policies(1);
  while (fleet.sites.size() < kSites) {
    const std::size_t i = fleet.sites.size() % base_sites.size();
    fleet.sites.push_back(base_sites[i]);
    fleet.policies.push_back(base_policies[i]);
  }
  fleet.regions = core::contiguous_regions(kSites, kSitesPerRegion);
  return fleet;
}

/// The month's scenario: seed and fault ladder are pure functions of the
/// month index, so the serial and threaded passes see identical inputs.
core::FleetMonthConfig month_config(std::size_t month, std::size_t hours,
                                    std::size_t num_regions) {
  core::FleetMonthConfig config;
  config.hours = hours;
  config.seed = 0xb111ca9f1ee7ULL ^ (month * 0x9e3779b97f4a7c15ULL);
  config.base_premium = 1.2e13;
  config.base_ordinary = 3e12;
  config.base_demand_mw = 180.0;
  config.hourly_budget = 2e8;
  // The rotating ladder: each fault kind walks across the fleet with the
  // month index so every region eventually sees every envelope.
  const std::size_t quarter = hours / 4 + 1;
  config.faults.region_outages.push_back(
      {month % num_regions, quarter, quarter / 2 + 1});
  config.faults.chunk_stalls.push_back(
      {(month * 7 + 3) % num_regions, quarter / 2, quarter, /*node_budget=*/1});
  config.faults.chunk_squeezes.push_back(
      {(month * 13 + 5) % num_regions, 2 * quarter, quarter,
       /*arena_bytes=*/64});
  config.faults.outages.push_back(
      {(month * 11 + 1) % kSites, 1, quarter});
  return config;
}

std::uint64_t fnv1a(std::uint64_t hash, const std::string& bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Which axis the threaded pass shards across the pool. Months is the
/// scalable default: each scenario-month is one task running its chunks
/// inline (independent samples, near-linear in cores, and no nested pool
/// to deadlock on). Chunks runs months sequentially with each month's 20
/// region solves fanned out — the FleetController's own parallelism.
enum class Shard { kMonths, kChunks };

struct MonthSummary {
  bool ok = false;
  std::string error;
  std::string csv;
  std::size_t degraded_chunks = 0;
  std::size_t quarantined_chunks = 0;
  std::size_t region_down_chunks = 0;
  std::array<std::size_t, core::kFailureReasonCount> tally{};
};

/// One scenario-month end to end. A fresh controller per month: quarantine
/// state and warm arenas never leak between months, so each month is an
/// independent sample and every pass sees identical inputs.
MonthSummary run_one_month(const Fleet& fleet, std::size_t month,
                           std::size_t hours, util::ThreadPool* chunk_pool) {
  MonthSummary summary;
  core::FleetController controller(fleet.sites, fleet.policies, fleet.regions,
                                   {}, chunk_pool);
  try {
    const core::MonthlyResult result =
        controller.run_month(month_config(month, hours, fleet.regions.size()));
    summary.csv = core::fleet_month_csv(result);
    summary.degraded_chunks = result.degraded_chunks;
    summary.quarantined_chunks = result.quarantined_chunks;
    summary.region_down_chunks = result.region_down_chunks;
    summary.tally = result.chunk_failure_tally;
    summary.ok = true;
  } catch (const std::exception& e) {
    summary.error = e.what();
  }
  return summary;
}

struct PassResult {
  double seconds = 0.0;
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  std::size_t aborts = 0;  ///< months that threw out of run_month
  std::size_t degraded_chunks = 0;
  std::size_t quarantined_chunks = 0;
  std::size_t region_down_chunks = 0;
  std::array<std::size_t, core::kFailureReasonCount> tally{};
};

PassResult run_pass(const Fleet& fleet, std::size_t months, std::size_t hours,
                    util::ThreadPool* pool, Shard shard) {
  PassResult result;
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto start = std::chrono::steady_clock::now();
  // Every path folds summaries serially in month order — the digest is a
  // pure function of the configs, never of scheduling.
  std::vector<MonthSummary> summaries(months);
  if (pool != nullptr && shard == Shard::kMonths) {
    std::vector<std::future<util::TaskResult<MonthSummary>>> futures;
    futures.reserve(months);
    for (std::size_t m = 0; m < months; ++m)
      futures.push_back(pool->submit_noexcept([&fleet, m, hours] {
        return run_one_month(fleet, m, hours, nullptr);
      }));
    for (std::size_t m = 0; m < months; ++m) {
      util::TaskResult<MonthSummary> task = futures[m].get();
      summaries[m] = task.ok ? std::move(task.value)
                             : MonthSummary{false, task.error, {}, 0, 0, 0, {}};
    }
  } else {
    for (std::size_t m = 0; m < months; ++m)
      summaries[m] = run_one_month(fleet, m, hours, pool);
  }
  for (std::size_t m = 0; m < months; ++m) {
    const MonthSummary& s = summaries[m];
    if (!s.ok) {
      ++result.aborts;
      std::fprintf(stderr, "fleet_sweep: month %zu ABORTED: %s\n", m,
                   s.error.c_str());
      continue;
    }
    result.digest = fnv1a(result.digest, s.csv);
    result.degraded_chunks += s.degraded_chunks;
    result.quarantined_chunks += s.quarantined_chunks;
    result.region_down_chunks += s.region_down_chunks;
    for (std::size_t i = 0; i < result.tally.size(); ++i)
      result.tally[i] += s.tally[i];
  }
  result.seconds = std::chrono::duration<double>(
                       // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  std::size_t months = 1000;
  std::size_t hours = 24;
  std::size_t threads = std::max(2u, std::thread::hardware_concurrency());
  double min_speedup = 0.0;  // 0 = report only, don't gate
  try {
    if (args.get_bool("smoke")) {
      months = 6;
      hours = 8;
      threads = 4;
    }
    months = static_cast<std::size_t>(
        args.get_positive_long("months", static_cast<long>(months)));
    hours = static_cast<std::size_t>(
        args.get_positive_long("hours", static_cast<long>(hours)));
    threads = static_cast<std::size_t>(
        args.get_positive_long("threads", static_cast<long>(threads)));
    min_speedup = args.get_double("min-speedup", min_speedup);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_sweep: %s\n", e.what());
    return core::kExitUsage;
  }
  Shard shard = Shard::kMonths;
  const std::string shard_name = args.get("shard", "months");
  if (shard_name == "chunks") {
    shard = Shard::kChunks;
  } else if (shard_name != "months") {
    std::fprintf(stderr, "fleet_sweep: --shard must be months or chunks\n");
    return core::kExitUsage;
  }

  const Fleet fleet = build_fleet();
  std::printf("fleet_sweep: %zu months x %zu h, %zu sites / %zu regions, "
              "%zu threads, shard=%s\n",
              months, hours, kSites, fleet.regions.size(), threads,
              shard_name.c_str());

  const PassResult serial = run_pass(fleet, months, hours, nullptr, shard);
  util::ThreadPool pool(threads);
  const PassResult threaded = run_pass(fleet, months, hours, &pool, shard);

  const double serial_rate =
      static_cast<double>(months) / std::max(serial.seconds, 1e-9);
  const double threaded_rate =
      static_cast<double>(months) / std::max(threaded.seconds, 1e-9);
  // The threaded pass can only beat serial when the host has cores to
  // spare: with 20 regions the sweep scales to ~20 cores, and on a 1-core
  // host the two passes tie. host_cores lands in the JSON so archived
  // numbers stay interpretable.
  const double speedup = serial.seconds / std::max(threaded.seconds, 1e-9);

  util::Table table({"pass", "seconds", "months/sec", "degraded", "quarantined",
                     "region-down", "aborts"});
  const auto row = [&table](const char* name, const PassResult& pass,
                            double rate) {
    char sec_s[32], rate_s[32], deg_s[32], qua_s[32], down_s[32], ab_s[32];
    std::snprintf(sec_s, sizeof sec_s, "%.2f", pass.seconds);
    std::snprintf(rate_s, sizeof rate_s, "%.2f", rate);
    std::snprintf(deg_s, sizeof deg_s, "%zu", pass.degraded_chunks);
    std::snprintf(qua_s, sizeof qua_s, "%zu", pass.quarantined_chunks);
    std::snprintf(down_s, sizeof down_s, "%zu", pass.region_down_chunks);
    std::snprintf(ab_s, sizeof ab_s, "%zu", pass.aborts);
    table.add_row({name, sec_s, rate_s, deg_s, qua_s, down_s, ab_s});
  };
  row("serial", serial, serial_rate);
  row("threaded", threaded, threaded_rate);
  table.print(std::cout);

  const bool digests_match = serial.digest == threaded.digest;
  std::printf("speedup: %.2fx  digest: %016llx %s\n", speedup,
              static_cast<unsigned long long>(serial.digest),
              digests_match ? "(serial == threaded)" : "MISMATCH");
  std::printf("failure tally:");
  for (std::size_t i = 0; i < serial.tally.size(); ++i)
    if (serial.tally[i] > 0)
      std::printf(" %s=%zu",
                  core::to_string(static_cast<core::FailureReason>(i)),
                  serial.tally[i]);
  std::printf("\n");

  const std::string path = "BENCH_fleet.json";
  // billcap-lint: allow(raw-write): bench artifact, regenerated every run; no resume path reads it
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fleet_sweep: cannot write %s\n", path.c_str());
    return core::kExitRuntimeError;
  }
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"fleet_sweep\",\n"
      "  \"shape\": {\"sites\": %zu, \"regions\": %zu, \"months\": %zu,"
      " \"hours_per_month\": %zu, \"threads\": %zu, \"host_cores\": %u,"
      " \"shard\": \"%s\"},\n"
      "  \"serial\": {\"seconds\": %.3f, \"months_per_sec\": %.3f},\n"
      "  \"threaded\": {\"seconds\": %.3f, \"months_per_sec\": %.3f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"digest\": \"%016llx\",\n"
      "  \"digests_match\": %s,\n"
      "  \"fleet_hour_aborts\": %zu,\n"
      "  \"degraded_chunks\": %zu,\n"
      "  \"quarantined_chunks\": %zu,\n"
      "  \"region_down_chunks\": %zu,\n"
      "  \"failure_tally\": {\"node_limit\": %zu, \"time_limit\": %zu,"
      " \"infeasible\": %zu, \"arena_exhausted\": %zu, \"thrown\": %zu}\n"
      "}\n",
      kSites, fleet.regions.size(), months, hours, threads,
      std::thread::hardware_concurrency(), shard_name.c_str(), serial.seconds,
      serial_rate, threaded.seconds, threaded_rate, speedup,
      static_cast<unsigned long long>(serial.digest),
      digests_match ? "true" : "false", serial.aborts + threaded.aborts,
      serial.degraded_chunks, serial.quarantined_chunks,
      serial.region_down_chunks,
      serial.tally[static_cast<std::size_t>(core::FailureReason::kNodeLimit)],
      serial.tally[static_cast<std::size_t>(core::FailureReason::kTimeLimit)],
      serial.tally[static_cast<std::size_t>(core::FailureReason::kInfeasible)],
      serial.tally[static_cast<std::size_t>(
          core::FailureReason::kArenaExhausted)],
      serial.tally[static_cast<std::size_t>(core::FailureReason::kThrown)]);
  out << buf;
  out.close();
  std::printf("[data] %s\n", std::filesystem::absolute(path).string().c_str());

  if (serial.aborts + threaded.aborts > 0) {
    std::fprintf(stderr, "fleet_sweep: FAIL — %zu fleet-hour aborts\n",
                 serial.aborts + threaded.aborts);
    return core::kExitRuntimeError;
  }
  if (!digests_match) {
    std::fprintf(stderr,
                 "fleet_sweep: FAIL — serial and threaded digests differ\n");
    return core::kExitRuntimeError;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "fleet_sweep: FAIL — speedup %.2fx below %.2fx\n",
                 speedup, min_speedup);
    return core::kExitRuntimeError;
  }
  return core::kExitSuccess;
}
