// Extension bench — scalability of the centralized architecture (Section
// IX: "the computational complexity ... may not scale well for much
// larger-scale data center networks"), and what the two-level
// hierarchical capper buys.
//
// The paper network is replicated to 3/6/9/12 sites; for each size the
// flat capper and a hierarchical capper (3 sites per region) allocate the
// same hour. Reported: wall time per invocation and the ground-truth cost
// gap of decentralization.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/hierarchical.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace {

double now_solve_ms(const std::function<void()>& fn) {
  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace billcap;

  bench::heading("Extension: flat vs hierarchical capper at growing scale");
  util::Table table({"sites", "flat ms", "hier ms", "speedup",
                     "flat cost $", "hier cost $", "gap"});
  util::Csv csv({"sites", "flat_ms", "hier_ms", "flat_cost", "hier_cost"});

  const auto base_sites = datacenter::paper_datacenters();
  const auto base_policies = market::paper_policies(1);

  for (int replicas = 1; replicas <= 4; ++replicas) {
    std::vector<datacenter::DataCenter> sites;
    std::vector<market::PricingPolicy> policies;
    std::vector<double> demand;
    for (int rep = 0; rep < replicas; ++rep) {
      for (std::size_t i = 0; i < base_sites.size(); ++i) {
        sites.push_back(base_sites[i]);
        policies.push_back(base_policies[i]);
        demand.push_back(165.0 + 18.0 * rep + 11.0 * static_cast<double>(i));
      }
    }
    const double premium = 3.6e11 * replicas;
    const double ordinary = 0.9e11 * replicas;
    const double budget = 1e7;  // uncapped: isolate the step-1 MILP cost

    const core::BillCapper flat(sites, policies);
    core::CappingOutcome flat_out;
    const double flat_ms = now_solve_ms([&] {
      flat_out = flat.decide(premium, ordinary, demand, budget);
    });
    const double flat_cost =
        core::evaluate_allocation(sites, policies, demand,
                                  flat_out.allocation.lambda_vector())
            .total_cost;

    const core::HierarchicalCapper hier(
        sites, policies, core::contiguous_regions(sites.size(), 3));
    core::HierarchicalOutcome hier_out;
    const double hier_ms = now_solve_ms([&] {
      hier_out = hier.decide(premium, ordinary, demand, budget);
    });
    const double hier_cost =
        core::evaluate_allocation(sites, policies, demand,
                                  hier_out.site_lambda)
            .total_cost;

    table.add_row({std::to_string(sites.size()),
                   util::format_fixed(flat_ms, 1),
                   util::format_fixed(hier_ms, 1),
                   util::format_fixed(flat_ms / hier_ms, 1) + "x",
                   util::format_fixed(flat_cost, 0),
                   util::format_fixed(hier_cost, 0),
                   util::format_fixed(
                       100.0 * (hier_cost - flat_cost) / flat_cost, 2) + "%"});
    csv.add_numeric_row({static_cast<double>(sites.size()), flat_ms, hier_ms,
                         flat_cost, hier_cost});
  }
  table.print(std::cout);
  std::printf(
      "\nThe flat MILP's cost is exponential in sites x price levels; the\n"
      "hierarchical capper stays near-linear at a small optimality gap —\n"
      "the trade Section IX anticipates.\n");
  bench::save_csv(csv, "hierarchical_scale");
  return 0;
}
