// Extension bench — Peak Power Rebate programs (Section II): what does a
// rebate-aware cost minimizer save during peak hours?
//
// One representative peak hour is allocated three ways:
//   * no program          — plain step-price minimization
//   * rebate, unaware     — the optimizer ignores the program; the bill is
//                           still credited for whatever curtailment happens
//   * rebate, aware       — the program's credit is folded into the
//                           believed cost curves, so the optimizer can
//                           deliberately curtail below the baselines
// swept over rebate rates.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/cost_minimizer.hpp"
#include "core/formulation.hpp"
#include "datacenter/catalog.hpp"
#include "market/rebate.hpp"

int main() {
  using namespace billcap;

  const auto sites = datacenter::paper_datacenters();
  const auto policies = market::paper_policies(1);
  const std::vector<double> demand = {252.0, 215.0, 205.0};  // peak-hour grid
  const double lambda = 9e11;

  auto models_with = [&](const market::RebateProgram* program) {
    std::vector<core::SiteModel> models;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      core::SiteModel m =
          core::make_site_model(sites[i], policies[i], demand[i], true);
      if (program != nullptr)
        m.cost_curve = market::apply_rebate(m.cost_curve, *program);
      models.push_back(std::move(m));
    }
    return models;
  };

  auto true_bill = [&](const core::AllocationResult& r,
                       const market::RebateProgram* program) {
    double total = 0.0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const double p = sites[i].power_mw(r.sites[i].lambda);
      if (program != nullptr) {
        total += market::rebated_cost(policies[i], *program,
                                      /*peak_hour=*/true, p, demand[i]);
      } else {
        total += policies[i].cost_for(p, demand[i]);
      }
    }
    return total;
  };

  bench::heading("Extension: Peak Power Rebate, one peak hour, 900 Greq");
  util::Table table({"rebate $/MWh", "no program $", "unaware bill $",
                     "aware bill $", "aware saves"});
  util::Csv csv({"rebate", "no_program", "unaware", "aware"});

  const core::AllocationResult plain =
      core::minimize_cost_over_models(models_with(nullptr), lambda);
  const double plain_bill = true_bill(plain, nullptr);

  for (double rebate : {2.0, 5.0, 10.0, 20.0}) {
    // Baseline commitment: ~80 % of each site's cap during peak hours.
    market::RebateProgram program{.baseline_mw = 30.0,
                                  .rebate_per_mwh = rebate};
    const double unaware_bill = true_bill(plain, &program);
    const core::AllocationResult aware =
        core::minimize_cost_over_models(models_with(&program), lambda);
    const double aware_bill = true_bill(aware, &program);

    table.add_row({util::format_fixed(rebate, 0),
                   util::format_fixed(plain_bill, 0),
                   util::format_fixed(unaware_bill, 0),
                   util::format_fixed(aware_bill, 0),
                   util::format_fixed(
                       100.0 * (unaware_bill - aware_bill) /
                           std::max(unaware_bill, 1.0), 2) + "%"});
    csv.add_numeric_row({rebate, plain_bill, unaware_bill, aware_bill});
  }
  table.print(std::cout);
  std::printf(
      "\nA rebate-aware allocator shifts load between sites so the most\n"
      "valuable curtailment credits are collected; the gap grows with the\n"
      "rebate rate (Ameren's Power Smart Pricing participants saved ~20%%).\n");
  bench::save_csv(csv, "rebate_experiment");
  return 0;
}
