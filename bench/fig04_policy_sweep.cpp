// Figure 4 — Monthly electricity bill under Pricing Policies 0..3 for
// Cost Capping, Min-Only (Avg) and Min-Only (Low). Policy 0 is the flat
// price-taker world (all strategies coincide); Policies 2 and 3 double and
// triple the price increases of Policy 1, widening Cost Capping's edge.
//
// The 12 month-long simulations are independent and run through the
// repository thread pool.

#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace billcap;
  using core::Strategy;

  constexpr std::array<Strategy, 3> kStrategies = {
      Strategy::kCostCapping, Strategy::kMinOnlyAvg, Strategy::kMinOnlyLow};
  constexpr int kPolicies = 4;

  std::vector<double> bills(kPolicies * kStrategies.size(), 0.0);
  util::parallel_for(bills.size(), [&bills, &kStrategies](std::size_t task) {
    const int policy = static_cast<int>(task) / 3;
    const Strategy strategy = kStrategies[task % 3];
    core::SimulationConfig config;
    config.policy_level = policy;
    config.enforce_budget = false;
    bills[task] = core::Simulator(config).run(strategy).total_cost;
  });

  bench::heading("Fig. 4: monthly bill (M$) under pricing policies 0..3");
  util::Table table({"policy", "CostCapping", "MinOnly(Avg)", "MinOnly(Low)",
                     "CC saves vs Avg", "CC saves vs Low"});
  util::Csv csv({"policy", "cost_capping", "min_only_avg", "min_only_low"});
  for (int policy = 0; policy < kPolicies; ++policy) {
    const double cc = bills[static_cast<std::size_t>(policy) * 3 + 0];
    const double avg = bills[static_cast<std::size_t>(policy) * 3 + 1];
    const double low = bills[static_cast<std::size_t>(policy) * 3 + 2];
    table.add_row({"Policy" + std::to_string(policy),
                   util::format_fixed(cc / 1e6, 3),
                   util::format_fixed(avg / 1e6, 3),
                   util::format_fixed(low / 1e6, 3),
                   util::format_fixed(100.0 * (avg - cc) / avg, 1) + "%",
                   util::format_fixed(100.0 * (low - cc) / low, 1) + "%"});
    csv.add_numeric_row({static_cast<double>(policy), cc, avg, low});
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: equal bills under Policy 0; Cost Capping cheapest under\n"
      "1-3 with the gap growing in policy severity (paper Fig. 4).\n");
  bench::save_csv(csv, "fig04_policy_sweep");
  return 0;
}
