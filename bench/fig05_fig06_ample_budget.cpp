// Figures 5 and 6 — Bill capping under an AMPLE monthly budget ($2.5M):
//  * Fig. 5: hourly premium/ordinary arrivals vs served throughput — with
//    an ample budget everything is served.
//  * Fig. 6: hourly electricity cost vs the budgeter's hourly budget — the
//    cost stays below the budget, and unused budget carries over (the
//    budget line grows within each week).

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "util/calendar.hpp"

int main() {
  using namespace billcap;

  core::SimulationConfig config;
  config.monthly_budget = 2.5e6;
  const core::Simulator sim(config);
  const core::MonthlyResult r = sim.run(core::Strategy::kCostCapping);

  bench::heading("Fig. 5: throughput under a $2.5M monthly budget "
                 "(first 3 days hourly)");
  util::Table fig5({"hour", "premium in (G)", "premium served (G)",
                    "ordinary in (G)", "ordinary served (G)", "mode"});
  for (std::size_t h = 0; h < 72; h += 3) {
    const auto& rec = r.hours[h];
    fig5.add_row({std::to_string(h),
                  util::format_fixed(rec.premium_arrivals / 1e9, 1),
                  util::format_fixed(rec.served_premium / 1e9, 1),
                  util::format_fixed(rec.ordinary_arrivals / 1e9, 1),
                  util::format_fixed(rec.served_ordinary / 1e9, 1),
                  core::to_string(rec.mode)});
  }
  fig5.print(std::cout);
  std::printf("\nmonthly throughput: premium %.2f%%, ordinary %.2f%% "
              "[paper: 100%%, 100%%]\n",
              100.0 * r.premium_throughput_ratio(),
              100.0 * r.ordinary_throughput_ratio());

  bench::heading("Fig. 6: hourly cost vs hourly budget (one row per day)");
  util::Table fig6({"hour", "day", "hourly budget $", "cost $", "under?"});
  for (std::size_t h = 12; h < r.hours.size(); h += 24) {
    const auto& rec = r.hours[h];
    fig6.add_row({std::to_string(h),
                  util::hour_label(sim.history_trace().hours() + h),
                  util::format_fixed(rec.hourly_budget, 1),
                  util::format_fixed(rec.cost, 1),
                  rec.cost <= rec.hourly_budget ? "yes" : "NO"});
  }
  fig6.print(std::cout);
  std::printf("\nmonthly: cost $%.0f of $%.0f budget (utilization %.1f%%)\n",
              r.total_cost, r.monthly_budget,
              100.0 * r.budget_utilization());

  util::Csv csv({"hour", "premium_in", "premium_served", "ordinary_in",
                 "ordinary_served", "hourly_budget", "cost"});
  for (const auto& rec : r.hours) {
    csv.add_numeric_row({static_cast<double>(rec.hour), rec.premium_arrivals,
                         rec.served_premium, rec.ordinary_arrivals,
                         rec.served_ordinary, rec.hourly_budget, rec.cost});
  }
  bench::save_csv(csv, "fig05_fig06_ample_budget");
  return 0;
}
