// Serve soak — chaos harness for the overload-safe serving daemon.
//
// One compound chaos scenario, run twice through the real ServeLoop:
//
//   reference  the full horizon with every environmental fault active
//              (flash crowd, feed-revision burst, market-feed outage,
//              site outage) but no daemon deaths;
//   chaos      the same horizon with a kill-storm layered on top:
//              scattered single kills plus a repeated same-tick storm
//              (three deaths at one tick, zero forward progress between
//              them), every death resumed from the rotated checkpoint.
//
// The soak passes only if the daemon's overload contract holds under the
// storm:
//
//   1. premium QoS is never violated — nothing premium dropped at the
//      door and no premium backlog stranded at the end;
//   2. queue depths stay bounded — the ingest plane never exceeds its
//      configured capacities (backpressure, not buffer bloat);
//   3. the ServeHealth transition history is journaled — the final
//      checkpoint generation replays the daemon's degradation ladder;
//   4. recovery is bitwise lossless — the killed-and-resumed month ends
//      with byte-identical aggregates to the uninterrupted reference.
//
// An optional positional argument overrides the soak horizon in hours
// (default 48); the `soak` ctest label runs a short configuration.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "core/checkpoint_keys.hpp"
#include "core/exit_codes.hpp"
#include "core/simulator.hpp"
#include "serve/serve_loop.hpp"
#include "util/journal.hpp"

namespace {

/// Bitwise double comparison: recovery must be lossless, not just close.
bool same_bits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace billcap;

  std::size_t hours = 48;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed < 2) {
      std::fprintf(stderr, "serve_soak: horizon must be >= 2 hours\n");
      return core::kExitUsage;
    }
    hours = static_cast<std::size_t>(parsed);
  }

  // Chaos scenario: every fault window scales with the horizon so the
  // short CI configuration exercises the same ladder as the long soak.
  const auto at = [&](double frac) {
    return static_cast<std::size_t>(frac * static_cast<double>(hours));
  };
  core::SimulationConfig config;
  config.monthly_budget = 1.5e6;
  // The paper's 80 % premium share leaves no headroom for a 2x crowd —
  // premium alone would exceed fleet capacity and drops would be physics,
  // not a control failure. The soak tests the *ladder*, so premium is kept
  // small enough that shedding ordinary traffic can always absorb the
  // crowd.
  config.premium_share = 0.3;
  config.fault_plan.flash_crowds.push_back({at(0.20), at(0.35) - at(0.20), 2.0});
  config.fault_plan.feed_bursts.push_back({at(0.15), at(0.30) - at(0.15), 4});
  config.fault_plan.stale_intervals.push_back(
      {at(0.40), at(0.55) - at(0.40)});  // market-feed outage
  config.fault_plan.outages.push_back({1, at(0.60), at(0.72) - at(0.60)});

  serve::ServeConfig serve_config;
  serve_config.ticks_per_hour = 6;
  serve_config.horizon_hours = hours;
  serve_config.premium_queue_ticks = 8.0;
  serve_config.ordinary_queue_ticks = 6.0;
  serve_config.feed_queue_capacity = 16;
  serve_config.feed_updates_per_tick = 2;
  serve_config.admission.stale_ticks_tolerated = 8;

  const std::size_t total_ticks = hours * serve_config.ticks_per_hour;

  bench::heading("Serve soak: chaos month through the serving daemon");
  std::printf("horizon %zu h (%zu ticks): flash crowd x2.0, feed burst, "
              "feed outage, site outage\n",
              hours, total_ticks);

  // ---- reference: all faults, no daemon deaths --------------------------
  const std::string ref_path = "serve_soak_reference.j";
  std::remove(ref_path.c_str());
  const core::Simulator sim(config);
  const serve::ServeLoop reference_loop(sim, serve_config);
  const serve::ServeOutcome reference = reference_loop.run(ref_path, false);
  std::remove(ref_path.c_str());

  // ---- chaos: the same scenario under a kill-storm ----------------------
  // Scattered single kills plus a three-death same-tick storm (the
  // supervisor-escalation shape: zero checkpoint progress between deaths).
  serve::ServeConfig chaos_config = serve_config;
  const std::size_t storm_tick = total_ticks / 2;
  chaos_config.kill_at_ticks = {total_ticks / 10,     total_ticks / 4,
                                storm_tick,           storm_tick,
                                storm_tick,           (3 * total_ticks) / 4,
                                total_ticks - 2};
  const serve::ServeLoop chaos_loop(sim, chaos_config);

  const std::string chaos_path = "serve_soak_chaos.j";
  for (std::size_t g = 0; g < 2; ++g)
    std::remove(util::Journal::generation_path(chaos_path, g).c_str());
  serve::ServeLoop::Controls controls;
  controls.keep_generations = 2;

  std::size_t kills_survived = 0;
  serve::ServeOutcome chaos = chaos_loop.run(chaos_path, false, {}, controls);
  while (chaos.crashed) {
    ++kills_survived;
    chaos = chaos_loop.run(chaos_path, true, {}, controls);
  }

  const serve::ServeReport& ref = reference.report;
  const serve::ServeReport& r = chaos.report;

  util::Table table({"metric", "reference", "chaos"});
  const auto row = [&](const char* name, double a, double b) {
    table.add_row({name, util::format_double(a), util::format_double(b)});
  };
  row("total cost $", ref.total_cost, r.total_cost);
  row("premium throughput", ref.premium_throughput_ratio(),
      r.premium_throughput_ratio());
  row("ordinary throughput", ref.ordinary_throughput_ratio(),
      r.ordinary_throughput_ratio());
  row("premium dropped", ref.dropped_premium, r.dropped_premium);
  row("ordinary dropped", ref.dropped_ordinary, r.dropped_ordinary);
  row("max premium depth", ref.max_premium_depth, r.max_premium_depth);
  row("max ordinary depth", ref.max_ordinary_depth, r.max_ordinary_depth);
  table.add_row({"feed updates seen/dropped",
                 std::to_string(ref.feed_updates_seen) + "/" +
                     std::to_string(ref.feed_updates_dropped),
                 std::to_string(r.feed_updates_seen) + "/" +
                     std::to_string(r.feed_updates_dropped)});
  table.add_row({"re-plans", std::to_string(ref.replans),
                 std::to_string(r.replans)});
  table.add_row({"shed ticks", std::to_string(ref.shed_ticks),
                 std::to_string(r.shed_ticks)});
  table.add_row({"health transitions", std::to_string(ref.health_transitions),
                 std::to_string(r.health_transitions)});
  table.add_row({"kills survived", "0", std::to_string(kills_survived)});
  table.print(std::cout);

  util::Csv csv({"run", "total_cost", "premium_ratio", "ordinary_ratio",
                 "dropped_premium", "dropped_ordinary", "max_premium_depth",
                 "max_ordinary_depth", "shed_ticks", "health_transitions",
                 "kills_survived"});
  const auto csv_row = [&](const char* name, const serve::ServeReport& rep,
                           std::size_t kills) {
    csv.add_row({name, util::format_double(rep.total_cost),
                 util::format_double(rep.premium_throughput_ratio()),
                 util::format_double(rep.ordinary_throughput_ratio()),
                 util::format_double(rep.dropped_premium),
                 util::format_double(rep.dropped_ordinary),
                 util::format_double(rep.max_premium_depth),
                 util::format_double(rep.max_ordinary_depth),
                 std::to_string(rep.shed_ticks),
                 std::to_string(rep.health_transitions),
                 std::to_string(kills)});
  };
  csv_row("reference", ref, 0);
  csv_row("chaos", r, kills_survived);
  bench::save_csv(csv, "serve_soak");

  // ---- the contract -----------------------------------------------------
  bool ok = true;
  const auto check = [&](const char* what, bool held) {
    std::printf("[check] %s: %s\n", what, held ? "yes" : "NO");
    ok = ok && held;
  };

  check("chaos month completed",
        !chaos.crashed && !chaos.stopped && r.ticks_committed == total_ticks);
  check("kill-storm fully consumed",
        kills_survived == chaos_config.kill_at_ticks.size());
  check("premium QoS never violated", r.premium_qos_ok());
  check("queue depths bounded by capacity",
        r.max_premium_depth <= r.premium_queue_capacity &&
            r.max_ordinary_depth <= r.ordinary_queue_capacity);
  check("overload provoked the degradation ladder",
        r.health_transitions >= 1 && r.shed_ticks > 0);

  // The final checkpoint generation must replay the health history: the
  // journal is the post-mortem record, not just the resume state.
  bool journaled = false;
  try {
    const util::Journal j = util::Journal::load(
        util::Journal::generation_path(chaos_path, 0),
        core::keys::kServeCheckpointMagic, core::keys::kServeCheckpointVersion);
    journaled =
        j.get_size(core::keys::kServeHealthTransitions) ==
            r.health_transitions &&
        !j.get(core::keys::kServeHealthHistory).empty();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_soak: journal reload failed: %s\n", e.what());
  }
  check("health transitions journaled in the final checkpoint", journaled);

  check("recovery bitwise lossless vs reference",
        same_bits(r.total_cost, ref.total_cost) &&
            same_bits(r.total_served_premium, ref.total_served_premium) &&
            same_bits(r.total_served_ordinary, ref.total_served_ordinary) &&
            same_bits(r.dropped_premium, ref.dropped_premium) &&
            same_bits(r.dropped_ordinary, ref.dropped_ordinary) &&
            r.health_transitions == ref.health_transitions);

  for (std::size_t g = 0; g < 2; ++g)
    std::remove(util::Journal::generation_path(chaos_path, g).c_str());

  return ok ? core::kExitSuccess : core::kExitRuntimeError;
}
