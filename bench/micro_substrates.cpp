// Micro-benchmarks of the substrates: simplex/MILP kernels, the DC-OPF,
// queueing-based server sizing, power models and trace generation. These
// are the per-call costs underneath every figure bench.

#include <benchmark/benchmark.h>

#include <vector>

#include "datacenter/catalog.hpp"
#include "lp/milp.hpp"
#include "lp/piecewise.hpp"
#include "lp/simplex.hpp"
#include "market/dcopf.hpp"
#include "market/pjm5.hpp"
#include "market/pricing_policy.hpp"
#include "queueing/ggm.hpp"
#include "queueing/mmm.hpp"
#include "util/rng.hpp"
#include "workload/wiki_synth.hpp"

namespace {

using namespace billcap;

void BM_SimplexDense(benchmark::State& state) {
  // Random dense feasible LP with n variables and n constraints.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(42);
  lp::Problem p;
  for (int j = 0; j < n; ++j)
    p.add_variable("x" + std::to_string(j), 0.0, 10.0,
                   rng.uniform(-1.0, 1.0));
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(0.0, 1.0)});
    p.add_constraint("r" + std::to_string(i), std::move(terms),
                     lp::Relation::kLessEqual, rng.uniform(5.0, 50.0));
  }
  for (auto _ : state) {
    const lp::Solution s = lp::solve_lp(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMicrosecond);

void BM_MilpKnapsack(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  util::Rng rng(7);
  lp::Problem p;
  p.set_sense(lp::Sense::kMaximize);
  std::vector<lp::Term> terms;
  for (int j = 0; j < bits; ++j) {
    const int z = p.add_binary("z" + std::to_string(j), rng.uniform(1.0, 9.0));
    terms.push_back({z, rng.uniform(1.0, 5.0)});
  }
  p.add_constraint("cap", std::move(terms), lp::Relation::kLessEqual,
                   static_cast<double>(bits));
  for (auto _ : state) {
    const lp::Solution s = lp::solve_milp(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(16)->Arg(22)
    ->Unit(benchmark::kMicrosecond);

void BM_DcOpfPjm5(benchmark::State& state) {
  const market::Grid grid = market::pjm5_grid();
  const auto loads = market::pjm5_loads(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    const market::DcOpfResult r = market::solve_dcopf(grid, loads);
    benchmark::DoNotOptimize(r.total_cost);
  }
}
BENCHMARK(BM_DcOpfPjm5)->Arg(300)->Arg(900)->Unit(benchmark::kMicrosecond);

void BM_ServerSizing(benchmark::State& state) {
  const queueing::GgmParams params{1.8e6, 1.0, 1.0};
  double lambda = 1e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queueing::min_servers_for_response_time(params, lambda, 2.0 / 1.8e6));
    lambda += 1.0;  // defeat caching
  }
}
BENCHMARK(BM_ServerSizing);

void BM_ErlangCLargeM(benchmark::State& state) {
  const auto m = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queueing::erlang_c(m, 0.8 * static_cast<double>(m), 1.0));
  }
}
BENCHMARK(BM_ErlangCLargeM)->Arg(1'000)->Arg(100'000)->Arg(300'000)
    ->Unit(benchmark::kMicrosecond);

void BM_SitePowerBreakdown(benchmark::State& state) {
  const auto sites = datacenter::paper_datacenters();
  double lambda = 3e11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sites[0].power_breakdown(lambda));
    lambda += 1.0;
  }
}
BENCHMARK(BM_SitePowerBreakdown);

void BM_PiecewiseEncode(benchmark::State& state) {
  const auto policies = market::paper_policies(1);
  for (auto _ : state) {
    lp::Problem p;
    const lp::PiecewiseVars vars = lp::add_piecewise_cost(
        p, policies[0].dc_cost_curve(200.0, 42.0), "c");
    benchmark::DoNotOptimize(vars.x);
  }
}
BENCHMARK(BM_PiecewiseEncode)->Unit(benchmark::kMicrosecond);

void BM_WikiTraceMonth(benchmark::State& state) {
  const workload::WikiSynthParams params;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const workload::Trace t = workload::generate_wiki_trace(params, 720, seed++);
    benchmark::DoNotOptimize(t.total());
  }
}
BENCHMARK(BM_WikiTraceMonth)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
