// Figure 1 — Locational electricity pricing policies (price vs load) at
// the three consumer locations of the PJM five-bus system.
//
// Two views are produced:
//  1. Derived: a DC-OPF sweep of the five-bus system; the LMP at each load
//     bus is read from the dual of its nodal balance constraint, and the
//     step curve is collapsed from the sweep. This reproduces the
//     *mechanism* of Figure 1 (steps appear where a generator or line
//     constraint binds).
//  2. Canonical: the step policies the evaluation actually uses, whose
//     Data Center 1 prices are verbatim from the paper (Section VII-B).

#include <cstdio>

#include "bench_common.hpp"
#include "market/pjm5.hpp"
#include "market/policy_derivation.hpp"
#include "market/pricing_policy.hpp"
#include "util/table.hpp"

int main() {
  using namespace billcap;

  bench::heading("Fig. 1 (derived): DC-OPF LMP sweep of the PJM 5-bus system");
  const market::Grid grid = market::pjm5_grid();
  const auto derived = market::derive_policies_from_opf(
      grid, market::pjm5_load_buses(), 920.0, 2.0);

  util::Table derived_table(
      {"location", "level", "from local load (MW)", "LMP ($/MWh)"});
  const char* names[3] = {"B", "C", "D"};
  for (std::size_t i = 0; i < derived.size(); ++i) {
    for (std::size_t k = 0; k < derived[i].num_levels(); ++k) {
      derived_table.add_row(
          {names[i], std::to_string(k),
           util::format_fixed(derived[i].thresholds_mw()[k], 1),
           util::format_fixed(derived[i].prices_per_mwh()[k], 2)});
    }
  }
  derived_table.print(std::cout);

  bench::heading("Fig. 1 (canonical): Policy 1 used by the evaluation");
  const auto canonical = market::paper_policies(1);
  util::Table canon_table(
      {"location", "level", "from local load (MW)", "price ($/MWh)"});
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    for (std::size_t k = 0; k < canonical[i].num_levels(); ++k) {
      canon_table.add_row(
          {names[i], std::to_string(k),
           util::format_fixed(canonical[i].thresholds_mw()[k], 1),
           util::format_fixed(canonical[i].prices_per_mwh()[k], 2)});
    }
  }
  canon_table.print(std::cout);
  std::printf(
      "\nLocation B level prices (10.00, 13.90, 15.00, 22.00, 24.00) are the\n"
      "paper's verbatim Data Center 1 policy; C and D are reconstructed\n"
      "(DESIGN.md section 2).\n");

  // CSV: price-vs-load series for plotting, both variants.
  util::Csv csv({"local_load_mw", "derived_B", "derived_C", "derived_D",
                 "canonical_B", "canonical_C", "canonical_D"});
  for (double load = 1.0; load <= 306.0; load += 1.0) {
    csv.add_numeric_row({load, derived[0].price_at(load),
                         derived[1].price_at(load), derived[2].price_at(load),
                         canonical[0].price_at(load),
                         canonical[1].price_at(load),
                         canonical[2].price_at(load)});
  }
  bench::save_csv(csv, "fig01_pricing_policies");
  return 0;
}
