// Market loop sweep — the closed-loop coupler's stability envelope.
//
// Runs the evaluation month with the price-load feedback loop closed, over
// a grid of feedback gains x damping policies, and asserts the coupler's
// safety contract:
//
//   1. the destabilizing configuration (high gain, no damping) actually
//      destabilizes — oscillating hours are detected, the divergence
//      breaker opens (open-loop fallback hours appear) — and yet premium
//      QoS is never violated (the fallback plans on the static curves);
//   2. the damped configuration (paper gain, full ladder) converges within
//      the iteration cap on EVERY hour of the month — no oscillation, no
//      divergence, no fallback;
//   3. the damped month is deterministic: two runs produce bitwise
//      identical hour series (FNV digest over every hour's cost, dispatch
//      and coupler trajectory).
//
// Results land in BENCH_market.json next to the binary (archived at the
// repo root by tools/ci.sh). Flags: --gains a,b,c --dampings off,ladder,full
// to reshape the sweep, --smoke for the contract-only ctest configuration
// (the three configurations the gates need, nothing more).

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace billcap;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Bitwise digest of the month's full decision trajectory: any
/// nondeterminism in the coupler (iteration order, curve derivation,
/// breaker clock) shows up as a digest mismatch between identical runs.
std::uint64_t month_digest(const core::MonthlyResult& result) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const core::HourRecord& h : result.hours) {
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(h.cost));
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(h.predicted_cost));
    for (const double l : h.site_lambda)
      hash = fnv1a(hash, std::bit_cast<std::uint64_t>(l));
    hash = fnv1a(hash, h.coupler_iterations);
    hash = fnv1a(hash, h.coupler_converged ? 1 : 0);
    hash = fnv1a(hash, h.coupler_fallback ? 1 : 0);
    hash = fnv1a(hash, h.coupler_rung);
    hash = fnv1a(hash, static_cast<std::uint64_t>(h.failure));
  }
  return hash;
}

struct ConfigResult {
  double gain = 0.0;
  core::DampingMode damping = core::DampingMode::kLadder;
  std::size_t hours = 0;
  std::size_t closed_loop_hours = 0;
  std::size_t fallback_hours = 0;
  std::size_t oscillation_hours = 0;
  std::size_t diverged_hours = 0;
  std::size_t iterations = 0;
  std::size_t max_hour_iterations = 0;
  double premium_throughput = 0.0;
  double total_cost = 0.0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

ConfigResult run_config(double gain, core::DampingMode damping) {
  core::SimulationConfig config;
  config.market_coupler.enabled = true;
  config.market_coupler.loop.feedback_gain = gain;
  config.market_coupler.damping = damping;

  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
  const auto start = std::chrono::steady_clock::now();
  const core::MonthlyResult result =
      core::Simulator(config).run(core::Strategy::kCostCapping);

  ConfigResult r;
  r.gain = gain;
  r.damping = damping;
  r.hours = result.hours.size();
  r.closed_loop_hours = result.closed_loop_hours;
  r.fallback_hours = result.coupler_fallback_hours;
  r.oscillation_hours = result.failure_tally[static_cast<std::size_t>(
      core::FailureReason::kPriceOscillation)];
  r.diverged_hours = result.failure_tally[static_cast<std::size_t>(
      core::FailureReason::kCouplerDiverged)];
  r.iterations = result.coupler_iterations;
  for (const core::HourRecord& h : result.hours)
    r.max_hour_iterations = std::max(r.max_hour_iterations,
                                     h.coupler_iterations);
  r.premium_throughput = result.premium_throughput_ratio();
  r.total_cost = result.total_cost;
  r.digest = month_digest(result);
  r.seconds = std::chrono::duration<double>(
                  // billcap-lint: allow(wall-clock): bench harness measures real solver latency, not simulated time
                  std::chrono::steady_clock::now() - start)
                  .count();
  return r;
}

core::DampingMode damping_from(const std::string& name) {
  if (name == "off") return core::DampingMode::kOff;
  if (name == "ladder") return core::DampingMode::kLadder;
  if (name == "full") return core::DampingMode::kFull;
  throw std::runtime_error("--dampings: unknown mode '" + name +
                           "' (off|ladder|full)");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  std::vector<double> gains;
  std::vector<core::DampingMode> dampings;
  bool smoke = false;
  try {
    smoke = args.get_bool("smoke");
    gains = args.get_double_list("gains", {1.0, 2.5, 4.0});
    const std::string damping_csv = args.get("dampings", "off,ladder,full");
    for (std::size_t pos = 0; pos <= damping_csv.size();) {
      const std::size_t comma = damping_csv.find(',', pos);
      const std::size_t end =
          comma == std::string::npos ? damping_csv.size() : comma;
      if (end > pos)
        dampings.push_back(damping_from(damping_csv.substr(pos, end - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "market_loop: %s\n", e.what());
    return core::kExitUsage;
  }

  // The two configurations the contract gates on, plus (full sweep only)
  // every other point of the grid.
  constexpr double kPaperGain = 1.0;
  constexpr double kHighGain = 4.0;
  std::vector<std::pair<double, core::DampingMode>> grid;
  if (smoke) {
    grid = {{kHighGain, core::DampingMode::kOff},
            {kPaperGain, core::DampingMode::kFull},
            {kPaperGain, core::DampingMode::kLadder}};
  } else {
    for (const double g : gains)
      for (const core::DampingMode d : dampings) grid.emplace_back(g, d);
    // The contract's corner points ride along even if the user reshaped
    // the sweep away from them.
    for (const auto& corner :
         {std::pair{kHighGain, core::DampingMode::kOff},
          std::pair{kPaperGain, core::DampingMode::kFull}})
      if (std::find(grid.begin(), grid.end(), corner) == grid.end())
        grid.push_back(corner);
  }

  std::printf("market_loop: %zu configurations x 1 month, closed loop\n",
              grid.size());

  std::vector<ConfigResult> results;
  results.reserve(grid.size());
  for (const auto& [gain, damping] : grid)
    results.push_back(run_config(gain, damping));

  util::Table table({"gain", "damping", "closed", "fallback", "oscill",
                     "diverged", "iters", "max/h", "premium", "seconds"});
  for (const ConfigResult& r : results) {
    char g_s[32], cl_s[32], fb_s[32], os_s[32], dv_s[32], it_s[32], mx_s[32],
        pr_s[32], sec_s[32];
    std::snprintf(g_s, sizeof g_s, "%.1f", r.gain);
    std::snprintf(cl_s, sizeof cl_s, "%zu/%zu", r.closed_loop_hours, r.hours);
    std::snprintf(fb_s, sizeof fb_s, "%zu", r.fallback_hours);
    std::snprintf(os_s, sizeof os_s, "%zu", r.oscillation_hours);
    std::snprintf(dv_s, sizeof dv_s, "%zu", r.diverged_hours);
    std::snprintf(it_s, sizeof it_s, "%zu", r.iterations);
    std::snprintf(mx_s, sizeof mx_s, "%zu", r.max_hour_iterations);
    std::snprintf(pr_s, sizeof pr_s, "%.4f", r.premium_throughput);
    std::snprintf(sec_s, sizeof sec_s, "%.2f", r.seconds);
    table.add_row({g_s, core::to_string(r.damping), cl_s, fb_s, os_s, dv_s,
                   it_s, mx_s, pr_s, sec_s});
  }
  table.print(std::cout);

  const auto find = [&](double gain,
                        core::DampingMode damping) -> const ConfigResult* {
    for (const ConfigResult& r : results)
      if (r.gain == gain && r.damping == damping) return &r;
    return nullptr;
  };
  const ConfigResult* destab = find(kHighGain, core::DampingMode::kOff);
  const ConfigResult* damped = find(kPaperGain, core::DampingMode::kFull);

  std::vector<std::string> failures;
  if (destab == nullptr || damped == nullptr) {
    failures.push_back("contract corner configurations missing from sweep");
  } else {
    // Gate 1: high gain undamped destabilizes, the machinery catches it,
    // and the premium guarantee survives the whole episode.
    if (destab->oscillation_hours == 0)
      failures.push_back("destabilizing config: no oscillation detected");
    if (destab->fallback_hours == 0)
      failures.push_back(
          "destabilizing config: breaker never opened (no fallback hours)");
    if (destab->premium_throughput < 1.0 - 1e-9)
      failures.push_back("destabilizing config: premium QoS violated");
    // Gate 2: the damped paper-gain loop converges within the cap on every
    // single hour of the month.
    if (damped->closed_loop_hours != damped->hours ||
        damped->oscillation_hours != 0 || damped->diverged_hours != 0 ||
        damped->fallback_hours != 0)
      failures.push_back("damped config: not every hour converged closed-loop");
    if (damped->premium_throughput < 1.0 - 1e-9)
      failures.push_back("damped config: premium QoS violated");
    // Gate 3: the damped month is deterministic run-to-run.
    const ConfigResult rerun =
        run_config(kPaperGain, core::DampingMode::kFull);
    if (rerun.digest != damped->digest)
      failures.push_back("damped config: rerun digest mismatch");
  }

  const std::string path = "BENCH_market.json";
  // billcap-lint: allow(raw-write): bench artifact, regenerated every run; no resume path reads it
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "market_loop: cannot write %s\n", path.c_str());
    return core::kExitRuntimeError;
  }
  out << "{\n  \"bench\": \"market_loop\",\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"gain\": %.2f, \"damping\": \"%s\", \"hours\": %zu,"
        " \"closed_loop_hours\": %zu, \"fallback_hours\": %zu,"
        " \"oscillation_hours\": %zu, \"diverged_hours\": %zu,"
        " \"iterations\": %zu, \"max_hour_iterations\": %zu,"
        " \"premium_throughput\": %.6f, \"total_cost\": %.2f,"
        " \"seconds\": %.3f, \"digest\": \"%016llx\"}%s\n",
        r.gain, core::to_string(r.damping), r.hours, r.closed_loop_hours,
        r.fallback_hours, r.oscillation_hours, r.diverged_hours, r.iterations,
        r.max_hour_iterations, r.premium_throughput, r.total_cost, r.seconds,
        static_cast<unsigned long long>(r.digest),
        i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"contract_ok\": " << (failures.empty() ? "true" : "false")
      << ",\n  \"contract_failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i)
    out << (i > 0 ? ", " : "") << '"' << failures[i] << '"';
  out << "]\n}\n";
  out.close();
  std::printf("[data] %s\n", std::filesystem::absolute(path).string().c_str());

  if (!failures.empty()) {
    for (const std::string& f : failures)
      std::fprintf(stderr, "market_loop: FAIL — %s\n", f.c_str());
    return core::kExitRuntimeError;
  }
  std::printf("market_loop: contract OK (oscillation caught, breaker "
              "fallback engaged, damped loop converged every hour, "
              "deterministic)\n");
  return core::kExitSuccess;
}
