#pragma once

// Shared plumbing for the figure benches: every bench prints its series as
// an ASCII table on stdout and drops the full-resolution data as CSV into
// the working directory so the figures can be replotted.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace billcap::bench {

/// Writes `csv` as "<bench_name>.csv" in the current working directory and
/// reports the path on stdout.
inline void save_csv(const util::Csv& csv, const std::string& bench_name) {
  const std::string path = bench_name + ".csv";
  csv.save(path);
  std::printf("[data] %s (%zu rows)\n",
              std::filesystem::absolute(path).string().c_str(),
              csv.num_rows());
}

/// Prints a section header in a consistent style.
inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace billcap::bench
